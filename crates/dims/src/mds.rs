//! Minimum Describing Subsets: the DC/PDC-tree key.

use crate::item::Item;
use crate::key::{range_lists_overlap, Key};
use crate::mbr::Mbr;
use crate::query::QueryBox;
use crate::schema::Schema;

/// A Minimum Describing Subset key (Ester et al., "The DC-tree", ICDE 2000).
///
/// Where an [`Mbr`] describes a node's contents with one interval per
/// dimension, an MDS keeps up to [`Schema::mds_cap`] *hierarchy-aligned*
/// boxes per dimension — each corresponding to a node of the dimension
/// hierarchy. Clustered data that an MBR would smear into one huge interval
/// stays described by a few tight subtrees, so queries can both skip nodes
/// (no overlap) and consume cached aggregates (full coverage) far more often.
/// When a dimension accumulates more than the cap, the two entries with the
/// smallest common hierarchy ancestor are coarsened into that ancestor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mds {
    /// Per dimension: sorted, disjoint, hierarchy-aligned inclusive ranges.
    dims: Box<[Vec<(u64, u64)>]>,
}

impl Mds {
    /// The per-dimension describing ranges (sorted, disjoint).
    #[inline]
    pub fn dim_ranges(&self, d: usize) -> &[(u64, u64)] {
        &self.dims[d]
    }

    /// Total entries across dimensions (space accounting).
    pub fn entry_count(&self) -> usize {
        self.dims.iter().map(Vec::len).sum()
    }

    /// The smallest hierarchy-aligned block of dimension `d` that contains
    /// both ordinals, returned as `(lo, hi)`.
    fn lca_block(schema: &Schema, d: usize, a: u64, b: u64) -> (u64, u64) {
        let dim = schema.dim(d);
        let diff = a ^ b;
        let needed = 64 - diff.leading_zeros(); // 0 when a == b
        // Deepest level whose subtree span covers `needed` bits.
        let mut level = dim.depth();
        while dim.remaining_bits(level) < needed {
            level -= 1; // remaining_bits(0) == total_bits >= needed always
        }
        let rem = dim.remaining_bits(level);
        if rem == 64 {
            return (0, u64::MAX);
        }
        let lo = (a >> rem) << rem;
        (lo, lo | ((1u64 << rem) - 1))
    }

    /// Insert an aligned range into dimension `d`, merging overlaps, then
    /// coarsen until the cap holds.
    fn insert_range(&mut self, schema: &Schema, d: usize, lo: u64, hi: u64) -> bool {
        let list = &mut self.dims[d];
        // Already covered?
        let pos = list.partition_point(|&(_, rhi)| rhi < lo);
        if let Some(&(rlo, rhi)) = list.get(pos) {
            if rlo <= lo && hi <= rhi {
                return false;
            }
        }
        // Insert, then sweep-merge anything that overlaps or is adjacent
        // within an aligned block (we only merge true overlaps here; aligned
        // blocks only collide by nesting, so overlap implies containment).
        list.insert(pos, (lo, hi));
        let mut i = pos;
        // The inserted range may swallow followers (when it is an ancestor
        // block) or be swallowed — handled above. Merge contained followers.
        while i + 1 < list.len() && list[i + 1].0 <= list[i].1 {
            let next = list.remove(i + 1);
            list[i].1 = list[i].1.max(next.1);
        }
        // A previous entry may contain the inserted one.
        if i > 0 && list[i - 1].1 >= list[i].0 {
            let cur = list.remove(i);
            list[i - 1].1 = list[i - 1].1.max(cur.1);
            i -= 1;
        }
        let _ = i;
        // Coarsen to cap: repeatedly fuse the adjacent pair with the
        // smallest common ancestor block.
        while list.len() > schema.mds_cap() {
            let mut best = 0usize;
            let mut best_span = u128::MAX;
            for k in 0..list.len() - 1 {
                let (blo, bhi) = Self::lca_block(schema, d, list[k].0, list[k + 1].1);
                let span = bhi as u128 - blo as u128;
                if span < best_span {
                    best_span = span;
                    best = k;
                }
            }
            let (blo, bhi) = Self::lca_block(schema, d, list[best].0, list[best + 1].1);
            list[best] = (blo, bhi);
            list.remove(best + 1);
            // The fused block may now contain neighbours on either side.
            while best + 1 < list.len() && list[best + 1].0 <= list[best].1 {
                let next = list.remove(best + 1);
                list[best].1 = list[best].1.max(next.1);
            }
            while best > 0 && list[best - 1].1 >= list[best].0 {
                let cur = list.remove(best);
                list[best - 1].1 = list[best - 1].1.max(cur.1);
                best -= 1;
            }
        }
        true
    }

    fn dim_covered_len(&self, d: usize) -> u128 {
        self.dims[d]
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as u128)
            .sum()
    }
}

impl Key for Mds {
    fn empty(schema: &Schema) -> Self {
        Self { dims: vec![Vec::new(); schema.dims()].into_boxed_slice() }
    }

    fn extend_item(&mut self, schema: &Schema, item: &Item) -> bool {
        let mut changed = false;
        for (d, &c) in item.coords.iter().enumerate() {
            changed |= self.insert_range(schema, d, c, c);
        }
        changed
    }

    fn extend_key(&mut self, schema: &Schema, other: &Self) {
        for d in 0..self.dims.len() {
            for &(lo, hi) in other.dims[d].iter() {
                self.insert_range(schema, d, lo, hi);
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.dims.iter().all(Vec::is_empty)
    }

    fn overlaps_query(&self, q: &QueryBox) -> bool {
        if self.is_empty() {
            return false;
        }
        self.dims.iter().zip(q.ranges.iter()).all(|(list, &(qlo, qhi))| {
            let pos = list.partition_point(|&(_, rhi)| rhi < qlo);
            list.get(pos).is_some_and(|&(rlo, _)| rlo <= qhi)
        })
    }

    fn covered_by_query(&self, q: &QueryBox) -> bool {
        self.dims.iter().zip(q.ranges.iter()).all(|(list, &(qlo, qhi))| {
            list.iter().all(|&(rlo, rhi)| qlo <= rlo && rhi <= qhi)
        })
    }

    fn contains_item(&self, item: &Item) -> bool {
        if self.is_empty() {
            return false;
        }
        self.dims.iter().zip(item.coords.iter()).all(|(list, &c)| {
            let pos = list.partition_point(|&(_, rhi)| rhi < c);
            list.get(pos).is_some_and(|&(rlo, _)| rlo <= c)
        })
    }

    fn volume_frac(&self, schema: &Schema) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..self.dims.len())
            .map(|d| self.dim_covered_len(d) as f64 / schema.dim(d).ordinal_end() as f64)
            .product()
    }

    fn overlap_frac(&self, schema: &Schema, other: &Self) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let mut frac = 1.0;
        for d in 0..self.dims.len() {
            let inter = range_lists_overlap(&self.dims[d], &other.dims[d]);
            if inter == 0 {
                return 0.0;
            }
            frac *= inter as f64 / schema.dim(d).ordinal_end() as f64;
        }
        frac
    }

    fn to_mbr(&self, schema: &Schema) -> Mbr {
        if self.is_empty() {
            return Mbr::empty_with_dims(schema.dims());
        }
        Mbr::from_ranges(
            self.dims
                .iter()
                .map(|list| (list.first().unwrap().0, list.last().unwrap().1))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One dimension, 3 levels of fanout 4 (6 bits), cap 2 — small enough to
    /// reason about by hand.
    fn schema() -> Schema {
        Schema::new(
            vec![crate::schema::DimensionDef::new(
                "D",
                vec![
                    crate::schema::LevelDef::new("A", 4),
                    crate::schema::LevelDef::new("B", 4),
                    crate::schema::LevelDef::new("C", 4),
                ],
            )],
            2,
        )
    }

    fn item(c: u64) -> Item {
        Item::new(vec![c], 1.0)
    }

    #[test]
    fn keeps_separate_clusters_separate() {
        let s = schema();
        let mut m = Mds::empty(&s);
        m.extend_item(&s, &item(0));
        m.extend_item(&s, &item(1));
        // Two leaves; cap is 2, so both stay exact.
        assert_eq!(m.dim_ranges(0), &[(0, 0), (1, 1)]);
        assert!(m.contains_item(&item(0)));
        assert!(!m.contains_item(&item(2)));
    }

    #[test]
    fn coarsens_to_hierarchy_ancestors() {
        let s = schema();
        let mut m = Mds::empty(&s);
        // Ordinals 0 and 3 share the level-2 block [0,3]; ordinal 60 is far
        // away. With cap 2, inserting all three must fuse {0,3} -> [0,3].
        m.extend_item(&s, &item(0));
        m.extend_item(&s, &item(60));
        m.extend_item(&s, &item(3));
        assert_eq!(m.dim_ranges(0), &[(0, 3), (60, 60)]);
        // The MBR hull would be [0,60]; MDS keeps the hole.
        assert!(!m.contains_item(&item(30)));
    }

    #[test]
    fn coarsening_is_hierarchy_aligned() {
        let s = schema();
        let mut m = Mds::empty(&s);
        // 15 and 16 are adjacent ordinals but sit in different level-1
        // subtrees ([0,15] vs [16,31]): their LCA is the root.
        m.extend_item(&s, &item(15));
        m.extend_item(&s, &item(16));
        m.extend_item(&s, &item(40));
        let ranges = m.dim_ranges(0);
        assert!(ranges.len() <= 2);
        for &(lo, hi) in ranges {
            let len = hi - lo + 1;
            assert!(len.is_power_of_two(), "aligned blocks have power-of-two size");
            assert_eq!(lo % len, 0, "aligned blocks start at a multiple of their size");
        }
    }

    #[test]
    fn mds_tighter_than_mbr_for_queries() {
        let s = schema();
        let mut mds = Mds::empty(&s);
        let mut mbr = Mbr::empty(&s);
        for c in [0u64, 1, 62, 63] {
            mds.extend_item(&s, &item(c));
            mbr.extend_item(&s, &item(c));
        }
        let q = QueryBox::from_ranges(vec![(20, 40)]);
        assert!(mbr.overlaps_query(&q), "MBR smears across the hole");
        assert!(!mds.overlaps_query(&q), "MDS keeps the hole");
        // Full coverage by a pair of subtree queries.
        let q2 = QueryBox::from_ranges(vec![(0, 63)]);
        assert!(mds.covered_by_query(&q2));
    }

    #[test]
    fn volume_sums_disjoint_ranges() {
        let s = schema();
        let mut m = Mds::empty(&s);
        m.extend_item(&s, &item(0));
        m.extend_item(&s, &item(63));
        assert!((m.volume_frac(&s) - 2.0 / 64.0).abs() < 1e-12);
        let mut n = Mds::empty(&s);
        n.extend_item(&s, &item(0));
        assert!((m.overlap_frac(&s, &n) - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn extend_key_unions() {
        let s = schema();
        let mut a = Mds::empty(&s);
        a.extend_item(&s, &item(5));
        let mut b = Mds::empty(&s);
        b.extend_item(&s, &item(6));
        a.extend_key(&s, &b);
        assert!(a.contains_item(&item(5)));
        assert!(a.contains_item(&item(6)));
    }

    #[test]
    fn to_mbr_is_hull() {
        let s = schema();
        let mut m = Mds::empty(&s);
        m.extend_item(&s, &item(3));
        m.extend_item(&s, &item(50));
        assert_eq!(m.to_mbr(&s).ranges().unwrap(), &[(3, 50)]);
    }

    #[test]
    fn duplicate_inserts_do_not_change() {
        let s = schema();
        let mut m = Mds::empty(&s);
        assert!(m.extend_item(&s, &item(9)));
        assert!(!m.extend_item(&s, &item(9)));
    }

    #[test]
    fn multidim_query_semantics() {
        let s = Schema::uniform(2, 2, 4);
        let mut m = Mds::empty(&s);
        m.extend_item(&s, &Item::new(vec![0, 0], 1.0));
        m.extend_item(&s, &Item::new(vec![15, 15], 1.0));
        // Marginal semantics: the cross product (0,15) x (15,0) is also
        // described, as in the DC-tree. A query touching dim0=0, dim1=15
        // therefore overlaps.
        let q = QueryBox::from_ranges(vec![(0, 0), (15, 15)]);
        assert!(m.overlaps_query(&q));
        // But a query inside the hole in dim0 does not.
        let q2 = QueryBox::from_ranges(vec![(5, 9), (0, 15)]);
        assert!(!m.overlaps_query(&q2));
    }
}
