//! Figure 9: the effect of query coverage on (a) individual query time and
//! (b) the number of shards searched, as heat maps.
//!
//! Paper setup: N = 1 billion, p = 20. Scaled: N below, p = 8. Expected
//! shape: (a) most queries are fast at every coverage with a few slow
//! outliers at *low* coverage (deep descents past imprecise directory
//! nodes); (b) shards searched grows roughly linearly with coverage, with
//! mid-coverage outliers where the query box crosses many shard-partition
//! boundaries.

use std::time::{Duration, Instant};

use volap::{Cluster, VolapConfig};
use volap_bench::{drive, heatmap, quick_mode, scaled};
use volap_data::{DataGen, Op, QueryGen};
use volap_dims::Schema;

fn main() {
    let schema = Schema::tpcds();
    let preload = scaled(120_000, 15_000);
    let per_bin = scaled(40, 8);
    let nbins = 20;

    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 8;
    cfg.servers = 2;
    cfg.max_shard_items = scaled(8_000, 2_500) as u64;
    println!("# Figure 9: coverage impact (N = {preload}, p = {})", cfg.workers);
    if quick_mode() {
        println!("# (quick mode)");
    }
    let cluster = Cluster::start(cfg);

    let mut gen = DataGen::new(&schema, 9900, 1.5);
    let items = gen.items(preload);
    let ops: Vec<Op> = items.iter().cloned().map(Op::Insert).collect();
    drive(&cluster, 6, &ops);
    std::thread::sleep(Duration::from_millis(600));

    let sample: Vec<_> = items.iter().take(20_000).cloned().collect();
    let mut qg = QueryGen::new(&schema, 9901, 0.65);
    let bins = qg.fine_binned(&sample, nbins, per_bin, 600_000);

    let client = cluster.client();
    let mut time_points = Vec::new(); // (coverage, seconds)
    let mut shard_points = Vec::new(); // (coverage, shards searched)
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>10}",
        "coverage", "queries", "time_ms_avg", "time_ms_max", "shards_avg"
    );
    for bin in bins.iter() {
        if bin.is_empty() {
            continue;
        }
        let (mut t_sum, mut t_max, mut s_sum) = (0.0f64, 0.0f64, 0u64);
        for (c, q) in bin {
            let t = Instant::now();
            let (_, shards) = client.query(q).expect("query");
            let dt = t.elapsed().as_secs_f64();
            time_points.push((*c, dt));
            shard_points.push((*c, shards as f64));
            t_sum += dt;
            t_max = t_max.max(dt);
            s_sum += shards as u64;
        }
        let n = bin.len() as f64;
        let c_mid = bin.iter().map(|(c, _)| c).sum::<f64>() / n;
        println!(
            "{:>10.3} {:>8} {:>12.4} {:>12.4} {:>10.1}",
            c_mid,
            bin.len(),
            t_sum / n * 1e3,
            t_max * 1e3,
            s_sum as f64 / n
        );
    }

    println!("\n(a) query time vs coverage");
    println!("{}", heatmap(&time_points, 60, 16, "coverage", "query time (s)"));
    println!("(b) shards searched vs coverage");
    println!("{}", heatmap(&shard_points, 60, 16, "coverage", "shards searched"));
    println!("# paper shape: (a) fast everywhere, low-coverage outliers; (b) ~linear in coverage");
    cluster.shutdown();
}
