//! `QueryPlan`: the structured result of an ANALYZE'd query.
//!
//! The plan is a tree mirroring the execution: the routing server at the
//! root (which image leaves matched, the image generation and measured
//! staleness *at decision time*), one [`WorkerExec`] per contacted worker
//! (alias chases, `query_par` fan-out width, wall time, plus nested
//! `WorkerExec`s for remote forwards chased through stale image windows),
//! and one [`ShardExec`] per scanned shard carrying the exact
//! [`QueryTrace`] traversal counters the tree layer measured — so per-shard
//! `pruned`/`nodes_visited`/`items_scanned` sums in a plan equal an
//! independently traced run of the same query over the same data.
//!
//! Plans have two lossless encodings: the binary wire form (rides the
//! `AggPlan`/`AggExec` responses) and JSON via [`volap_obs::json`] (for
//! tooling); both round-trip exactly and both reject malformed input.

use bytes::{Buf, BufMut};
use volap_obs::json::{self, escape, Json};
use volap_tree::QueryTrace;

use crate::wire::{self, WireError};

/// Remote-forward nesting bound: decode rejects deeper plans (a forward
/// chain this long means a routing loop, not a real execution).
const MAX_FORWARD_DEPTH: usize = 64;

/// One shard's measured execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardExec {
    /// Shard id.
    pub shard: u64,
    /// Items stored in the shard when it was scanned.
    pub items: u64,
    /// Tree nodes whose lock was taken.
    pub nodes_visited: u64,
    /// Directory entries answered from the cached aggregate.
    pub covered_hits: u64,
    /// Leaf items tested individually.
    pub items_scanned: u64,
    /// Directory entries pruned (no overlap).
    pub pruned: u64,
    /// Queries answered wholly from a materialized level rollup (no tree
    /// walk at all).
    pub rollup_hits: u64,
    /// Wall time scanning this shard, microseconds.
    pub wall_us: u64,
}

impl ShardExec {
    /// The traversal counters as a [`QueryTrace`].
    pub fn trace(&self) -> QueryTrace {
        QueryTrace {
            nodes_visited: self.nodes_visited,
            covered_hits: self.covered_hits,
            items_scanned: self.items_scanned,
            pruned: self.pruned,
            rollup_hits: self.rollup_hits,
        }
    }
}

/// One worker's measured execution, possibly nesting remote forwards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerExec {
    /// Worker name.
    pub worker: String,
    /// Shard ids the server asked this worker for (pre alias-chase).
    pub requested: Vec<u64>,
    /// Split/move aliases chased while resolving the requested shards.
    pub alias_chases: u32,
    /// `query_par` fan-out width: shard scans run concurrently.
    pub fanout: u32,
    /// Wall time for the whole worker-side execution, microseconds.
    pub wall_us: u64,
    /// Shards scanned locally.
    pub shards: Vec<ShardExec>,
    /// Executions on other workers this one forwarded moved shards to.
    pub forwards: Vec<WorkerExec>,
}

/// The assembled plan for one ANALYZE'd query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryPlan {
    /// The server that routed the query.
    pub server: String,
    /// The server's image generation (applied image records) at routing
    /// time — join key against `route_miss`/`shard_adopt` events.
    pub image_generation: u64,
    /// Staleness samples the probe had measured when the route was chosen.
    pub staleness_samples: u64,
    /// p95 measured image staleness at routing time, microseconds.
    pub staleness_p95_us: u64,
    /// Image leaves (shard ids) the routing index matched, sorted.
    pub image_leaves: Vec<u64>,
    /// Time spent in the routing index, microseconds.
    pub route_us: u64,
    /// End-to-end server wall time, microseconds.
    pub wall_us: u64,
    /// Per-worker executions, sorted by worker name.
    pub workers: Vec<WorkerExec>,
}

impl QueryPlan {
    /// Sum of every shard's traversal counters across the whole plan,
    /// forwards included.
    pub fn totals(&self) -> QueryTrace {
        let mut t = QueryTrace::default();
        for w in &self.workers {
            worker_totals(w, &mut t);
        }
        t
    }

    /// Every shard actually scanned (forwards included), sorted by id.
    pub fn executed_shards(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for w in &self.workers {
            collect_shards(w, &mut out);
        }
        out.sort_unstable();
        out
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode_into(&mut buf);
        buf
    }

    /// Append the binary form to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        wire::put_str(buf, &self.server);
        buf.put_u64(self.image_generation);
        buf.put_u64(self.staleness_samples);
        buf.put_u64(self.staleness_p95_us);
        buf.put_u32(self.image_leaves.len() as u32);
        for &leaf in &self.image_leaves {
            buf.put_u64(leaf);
        }
        buf.put_u64(self.route_us);
        buf.put_u64(self.wall_us);
        buf.put_u32(self.workers.len() as u32);
        for w in &self.workers {
            encode_worker(w, buf);
        }
    }

    /// Decode from bytes, consuming from `buf`.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, WireError> {
        let server = wire::get_str(buf)?;
        need(buf, 24, "plan stamps")?;
        let image_generation = buf.get_u64();
        let staleness_samples = buf.get_u64();
        let staleness_p95_us = buf.get_u64();
        need(buf, 4, "image leaf count")?;
        let n = buf.get_u32() as usize;
        need(buf, n * 8, "image leaves")?;
        let image_leaves = (0..n).map(|_| buf.get_u64()).collect();
        need(buf, 20, "plan timings")?;
        let route_us = buf.get_u64();
        let wall_us = buf.get_u64();
        let n = buf.get_u32() as usize;
        let mut workers = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            workers.push(decode_worker(buf, 0)?);
        }
        Ok(Self {
            server,
            image_generation,
            staleness_samples,
            staleness_p95_us,
            image_leaves,
            route_us,
            wall_us,
            workers,
        })
    }

    /// Decode a standalone encoding (rejects trailing bytes).
    pub fn decode(mut data: &[u8]) -> Result<Self, WireError> {
        let plan = Self::decode_from(&mut data)?;
        if !data.is_empty() {
            return Err(format!("{} trailing bytes after plan", data.len()));
        }
        Ok(plan)
    }

    /// Render as JSON (lossless; [`QueryPlan::from_json`] recovers the
    /// exact plan).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String) {
        let leaves: Vec<String> = self.image_leaves.iter().map(|l| l.to_string()).collect();
        out.push_str(&format!(
            "{{\"server\": \"{}\", \"image_generation\": {}, \"staleness_samples\": {}, \
             \"staleness_p95_us\": {}, \"image_leaves\": [{}], \"route_us\": {}, \
             \"wall_us\": {}, \"workers\": [",
            escape(&self.server),
            self.image_generation,
            self.staleness_samples,
            self.staleness_p95_us,
            leaves.join(","),
            self.route_us,
            self.wall_us
        ));
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_worker_json(w, out);
        }
        out.push_str("]}");
    }

    /// Parse JSON produced by [`QueryPlan::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = json::parse(text)?;
        plan_from_json(&root)
    }

    /// Pretty-print the plan as an indented execution tree.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: routed {} image leaf(s) {:?} in {} us (image gen {}, staleness p95 {} us \
             over {} sample(s)); total {} us\n",
            self.server,
            self.image_leaves.len(),
            self.image_leaves,
            self.route_us,
            self.image_generation,
            self.staleness_p95_us,
            self.staleness_samples,
            self.wall_us
        );
        for w in &self.workers {
            render_worker(w, 1, &mut out);
        }
        out
    }
}

impl WorkerExec {
    /// Append the binary form to `buf` (nested inside plan and `AggExec`
    /// encodings).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        encode_worker(self, buf);
    }

    /// Decode one worker execution, consuming from `buf`.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, WireError> {
        decode_worker(buf, 0)
    }
}

fn need(buf: &&[u8], n: usize, what: &str) -> Result<(), WireError> {
    if buf.len() < n {
        Err(format!("truncated plan: need {n} bytes for {what}, have {}", buf.len()))
    } else {
        Ok(())
    }
}

fn worker_totals(w: &WorkerExec, t: &mut QueryTrace) {
    for s in &w.shards {
        t.merge(&s.trace());
    }
    for f in &w.forwards {
        worker_totals(f, t);
    }
}

fn collect_shards(w: &WorkerExec, out: &mut Vec<u64>) {
    out.extend(w.shards.iter().map(|s| s.shard));
    for f in &w.forwards {
        collect_shards(f, out);
    }
}

fn encode_worker(w: &WorkerExec, buf: &mut Vec<u8>) {
    wire::put_str(buf, &w.worker);
    buf.put_u32(w.requested.len() as u32);
    for &s in &w.requested {
        buf.put_u64(s);
    }
    buf.put_u32(w.alias_chases);
    buf.put_u32(w.fanout);
    buf.put_u64(w.wall_us);
    buf.put_u32(w.shards.len() as u32);
    for s in &w.shards {
        buf.put_u64(s.shard);
        buf.put_u64(s.items);
        buf.put_u64(s.nodes_visited);
        buf.put_u64(s.covered_hits);
        buf.put_u64(s.items_scanned);
        buf.put_u64(s.pruned);
        buf.put_u64(s.rollup_hits);
        buf.put_u64(s.wall_us);
    }
    buf.put_u32(w.forwards.len() as u32);
    for f in &w.forwards {
        encode_worker(f, buf);
    }
}

fn decode_worker(buf: &mut &[u8], depth: usize) -> Result<WorkerExec, WireError> {
    if depth > MAX_FORWARD_DEPTH {
        return Err(format!("plan forward nesting exceeds {MAX_FORWARD_DEPTH}"));
    }
    let worker = wire::get_str(buf)?;
    need(buf, 4, "requested count")?;
    let n = buf.get_u32() as usize;
    need(buf, n * 8, "requested shards")?;
    let requested = (0..n).map(|_| buf.get_u64()).collect();
    need(buf, 20, "worker stats")?;
    let alias_chases = buf.get_u32();
    let fanout = buf.get_u32();
    let wall_us = buf.get_u64();
    let n = buf.get_u32() as usize;
    need(buf, n * 64, "shard executions")?;
    let shards = (0..n)
        .map(|_| ShardExec {
            shard: buf.get_u64(),
            items: buf.get_u64(),
            nodes_visited: buf.get_u64(),
            covered_hits: buf.get_u64(),
            items_scanned: buf.get_u64(),
            pruned: buf.get_u64(),
            rollup_hits: buf.get_u64(),
            wall_us: buf.get_u64(),
        })
        .collect();
    need(buf, 4, "forward count")?;
    let n = buf.get_u32() as usize;
    let mut forwards = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        forwards.push(decode_worker(buf, depth + 1)?);
    }
    Ok(WorkerExec { worker, requested, alias_chases, fanout, wall_us, shards, forwards })
}

fn write_worker_json(w: &WorkerExec, out: &mut String) {
    let requested: Vec<String> = w.requested.iter().map(|s| s.to_string()).collect();
    out.push_str(&format!(
        "{{\"worker\": \"{}\", \"requested\": [{}], \"alias_chases\": {}, \"fanout\": {}, \
         \"wall_us\": {}, \"shards\": [",
        escape(&w.worker),
        requested.join(","),
        w.alias_chases,
        w.fanout,
        w.wall_us
    ));
    for (i, s) in w.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"shard\": {}, \"items\": {}, \"nodes_visited\": {}, \"covered_hits\": {}, \
             \"items_scanned\": {}, \"pruned\": {}, \"rollup_hits\": {}, \"wall_us\": {}}}",
            s.shard,
            s.items,
            s.nodes_visited,
            s.covered_hits,
            s.items_scanned,
            s.pruned,
            s.rollup_hits,
            s.wall_us
        ));
    }
    out.push_str("], \"forwards\": [");
    for (i, f) in w.forwards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_worker_json(f, out);
    }
    out.push_str("]}");
}

fn plan_from_json(root: &Json) -> Result<QueryPlan, String> {
    let mut image_leaves = Vec::new();
    for l in root.get("image_leaves")?.arr()? {
        image_leaves.push(l.num()?);
    }
    let mut workers = Vec::new();
    for w in root.get("workers")?.arr()? {
        workers.push(worker_from_json(w, 0)?);
    }
    Ok(QueryPlan {
        server: root.get("server")?.str()?.to_string(),
        image_generation: root.get("image_generation")?.num()?,
        staleness_samples: root.get("staleness_samples")?.num()?,
        staleness_p95_us: root.get("staleness_p95_us")?.num()?,
        image_leaves,
        route_us: root.get("route_us")?.num()?,
        wall_us: root.get("wall_us")?.num()?,
        workers,
    })
}

fn worker_from_json(v: &Json, depth: usize) -> Result<WorkerExec, String> {
    if depth > MAX_FORWARD_DEPTH {
        return Err(format!("plan forward nesting exceeds {MAX_FORWARD_DEPTH}"));
    }
    let mut requested = Vec::new();
    for s in v.get("requested")?.arr()? {
        requested.push(s.num()?);
    }
    let mut shards = Vec::new();
    for s in v.get("shards")?.arr()? {
        shards.push(ShardExec {
            shard: s.get("shard")?.num()?,
            items: s.get("items")?.num()?,
            nodes_visited: s.get("nodes_visited")?.num()?,
            covered_hits: s.get("covered_hits")?.num()?,
            items_scanned: s.get("items_scanned")?.num()?,
            pruned: s.get("pruned")?.num()?,
            rollup_hits: s.get("rollup_hits")?.num()?,
            wall_us: s.get("wall_us")?.num()?,
        });
    }
    let mut forwards = Vec::new();
    for f in v.get("forwards")?.arr()? {
        forwards.push(worker_from_json(f, depth + 1)?);
    }
    Ok(WorkerExec {
        worker: v.get("worker")?.str()?.to_string(),
        requested,
        alias_chases: v.get("alias_chases")?.num()?,
        fanout: v.get("fanout")?.num()?,
        wall_us: v.get("wall_us")?.num()?,
        shards,
        forwards,
    })
}

fn render_worker(w: &WorkerExec, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&format!(
        "{pad}{}: requested {:?}, {} alias chase(s), fanout {}, {} us\n",
        w.worker, w.requested, w.alias_chases, w.fanout, w.wall_us
    ));
    for s in &w.shards {
        out.push_str(&format!(
            "{pad}  shard {} ({} items): visited {}, covered {}, scanned {}, pruned {}, \
             rollup {}, {} us\n",
            s.shard,
            s.items,
            s.nodes_visited,
            s.covered_hits,
            s.items_scanned,
            s.pruned,
            s.rollup_hits,
            s.wall_us
        ));
    }
    for f in &w.forwards {
        render_worker(f, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> QueryPlan {
        QueryPlan {
            server: "server \"0\"\n".into(),
            image_generation: 7,
            staleness_samples: 3,
            staleness_p95_us: 1500,
            image_leaves: vec![1, 2, 9],
            route_us: 12,
            wall_us: 480,
            workers: vec![
                WorkerExec {
                    worker: "worker-0".into(),
                    requested: vec![1, 9],
                    alias_chases: 1,
                    fanout: 2,
                    wall_us: 300,
                    shards: vec![
                        ShardExec {
                            shard: 1,
                            items: 100,
                            nodes_visited: 10,
                            covered_hits: 3,
                            items_scanned: 40,
                            pruned: 5,
                            rollup_hits: 1,
                            wall_us: 80,
                        },
                        ShardExec { shard: 12, items: u64::MAX, ..Default::default() },
                    ],
                    forwards: vec![WorkerExec {
                        worker: "worker-1".into(),
                        requested: vec![9],
                        fanout: 1,
                        wall_us: 90,
                        shards: vec![ShardExec {
                            shard: 9,
                            items: 5,
                            nodes_visited: 1,
                            items_scanned: 5,
                            ..Default::default()
                        }],
                        ..Default::default()
                    }],
                },
                WorkerExec { worker: "worker-2".into(), requested: vec![2], ..Default::default() },
            ],
        }
    }

    #[test]
    fn binary_round_trip_is_lossless() {
        let plan = sample_plan();
        assert_eq!(QueryPlan::decode(&plan.encode()).unwrap(), plan);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let plan = sample_plan();
        assert_eq!(QueryPlan::from_json(&plan.to_json()).unwrap(), plan);
    }

    #[test]
    fn totals_sum_over_forwards() {
        let t = sample_plan().totals();
        assert_eq!(t.nodes_visited, 11);
        assert_eq!(t.covered_hits, 3);
        assert_eq!(t.items_scanned, 45);
        assert_eq!(t.pruned, 5);
        assert_eq!(t.rollup_hits, 1);
    }

    #[test]
    fn executed_shards_are_sorted_and_include_forwards() {
        assert_eq!(sample_plan().executed_shards(), vec![1, 9, 12]);
    }

    #[test]
    fn malformed_encodings_are_rejected() {
        let good = sample_plan().encode();
        for cut in 0..good.len() {
            assert!(QueryPlan::decode(&good[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut padded = good.clone();
        padded.push(0);
        assert!(QueryPlan::decode(&padded).is_err(), "trailing bytes must fail");
        assert!(QueryPlan::from_json("{}").is_err());
        assert!(QueryPlan::from_json(&(sample_plan().to_json() + "x")).is_err());
    }

    #[test]
    fn render_names_every_shard() {
        let text = sample_plan().render();
        for needle in ["shard 1 ", "shard 12 ", "shard 9 ", "fanout 2"] {
            assert!(text.contains(needle), "render missing {needle:?}:\n{text}");
        }
    }
}
