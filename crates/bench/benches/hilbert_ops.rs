//! Criterion microbenchmarks: compact Hilbert index computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use volap_data::DataGen;
use volap_dims::{HilbertMapper, Schema};
use volap_hilbert::HilbertCurve;

fn bench_curve_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("hilbert_index");
    for dims in [4usize, 8, 16, 32, 64] {
        let bits = vec![8u32; dims];
        let curve = HilbertCurve::new(&bits);
        let point: Vec<u64> = (0..dims).map(|j| (j as u64 * 37) % 256).collect();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("dims", dims), &point, |b, p| {
            b.iter(|| curve.index(p))
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let curve = HilbertCurve::new(&[8; 16]);
    let point: Vec<u64> = (0..16).map(|j| (j * 11) % 256).collect();
    let h = curve.index(&point);
    c.bench_function("hilbert_inverse_16d", |b| b.iter(|| curve.point(&h)));
}

fn bench_mapper(c: &mut Criterion) {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 9, 1.5);
    let items = gen.items(1_000);
    let expanded = HilbertMapper::new(&schema, true);
    let raw = HilbertMapper::new(&schema, false);
    let mut group = c.benchmark_group("tpcds_mapper");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.bench_function("expanded", |b| {
        b.iter(|| items.iter().map(|it| expanded.key(it).bit_len()).sum::<u32>())
    });
    group.bench_function("raw", |b| {
        b.iter(|| items.iter().map(|it| raw.key(it).bit_len()).sum::<u32>())
    });
    group.finish();
}

criterion_group!(benches, bench_curve_widths, bench_roundtrip, bench_mapper);
criterion_main!(benches);
