//! A "live dashboard" workload: the scenario VOLAP's introduction motivates.
//!
//! A pool of ingest clients streams point-of-sale facts at high velocity
//! while dashboard clients concurrently refresh a fixed panel of
//! hierarchical aggregates (revenue by country, by category, by hour, …).
//! Every dashboard refresh sees data that is at most a sync period old —
//! this is what "real-time OLAP" means in the paper.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example retail_dashboard
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use volap::{Cluster, VolapConfig};
use volap_data::DataGen;
use volap_dims::{DimPath, QueryBox, Schema};

fn main() {
    let schema = Schema::tpcds();
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.workers = 4;
    cfg.servers = 2;
    cfg.max_shard_items = 50_000;
    let cluster = Arc::new(Cluster::start(cfg));

    // The dashboard's query panel.
    let panel: Vec<(&str, QueryBox)> = {
        let mut panel = Vec::new();
        let root = |schema: &Schema| (0..schema.dims()).map(DimPath::root).collect::<Vec<_>>();
        panel.push(("total revenue", QueryBox::all(&schema)));
        let mut p = root(&schema);
        p[0] = DimPath::new(0, vec![0]);
        panel.push(("revenue in store-country 0", QueryBox::from_paths(&schema, &p)));
        let mut p = root(&schema);
        p[2] = DimPath::new(2, vec![0]);
        panel.push(("revenue in item-category 0", QueryBox::from_paths(&schema, &p)));
        let mut p = root(&schema);
        p[7] = DimPath::new(7, vec![9]);
        panel.push(("revenue in hour 9", QueryBox::from_paths(&schema, &p)));
        let mut p = root(&schema);
        p[3] = DimPath::new(3, vec![0, 5]);
        panel.push(("revenue in year 0 / month 5", QueryBox::from_paths(&schema, &p)));
        panel
    };

    let stop = Arc::new(AtomicBool::new(false));
    let inserted = Arc::new(AtomicU64::new(0));
    let refreshed = Arc::new(AtomicU64::new(0));

    let run_secs = 5;
    println!("streaming inserts + live dashboard for {run_secs}s ...");
    std::thread::scope(|s| {
        // 3 ingest sessions.
        for t in 0..3u64 {
            let client = cluster.client();
            let stop = Arc::clone(&stop);
            let inserted = Arc::clone(&inserted);
            let schema = schema.clone();
            s.spawn(move || {
                let mut gen = DataGen::new(&schema, 1000 + t, 1.5);
                while !stop.load(Ordering::Relaxed) {
                    for item in gen.items(64) {
                        if client.insert(&item).is_err() {
                            return;
                        }
                    }
                    inserted.fetch_add(64, Ordering::Relaxed);
                }
            });
        }
        // 2 dashboard sessions refreshing the panel.
        for _ in 0..2 {
            let client = cluster.client();
            let stop = Arc::clone(&stop);
            let refreshed = Arc::clone(&refreshed);
            let panel = panel.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for (_, q) in &panel {
                        if client.query(q).is_err() {
                            return;
                        }
                    }
                    refreshed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_secs(run_secs));
        stop.store(true, Ordering::Relaxed);
    });

    let ins = inserted.load(Ordering::Relaxed);
    let refr = refreshed.load(Ordering::Relaxed);
    println!(
        "ingested ~{ins} facts ({:.0}/s) while serving {refr} full dashboard refreshes",
        ins as f64 / run_secs as f64
    );

    // Final panel render.
    let client = cluster.client();
    let t = Instant::now();
    println!("\n=== dashboard ===");
    for (name, q) in &panel {
        let (agg, shards) = client.query(q).expect("query");
        println!(
            "{name:>32}: count={:>8} sum={:>14.2} mean={:>8.2} [{} shards]",
            agg.count,
            agg.sum,
            agg.mean().unwrap_or(0.0),
            shards
        );
    }
    println!("(rendered in {:?})", t.elapsed());
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => unreachable!("all clones dropped"),
    }
}
