//! Figure 5: insert and query latency of the four tree variants as the
//! number of dimensions grows (4 … 64).
//!
//! Paper setup: R-tree, Hilbert R-tree, PDC tree and Hilbert PDC tree over
//! a synthetic schema, dimensions swept 4–64. Expected shape: query latency
//! of the R-tree variants collapses past ~16 dimensions while both PDC
//! variants stay flat; insert latency of the geometric trees grows with
//! dimensionality while Hilbert insertion stays nearly flat.
//!
//! Store-kind mapping (see `volap_tree::StoreKind`): the "R-Tree" baseline
//! is the geometric tree with MBR keys, the "PDC-Tree" the geometric tree
//! with MDS keys, and the Hilbert variants use Hilbert insertion order with
//! and without the Figure-3 level expansion.

use std::time::Instant;

use volap_bench::{scaled, LatencyStats};
use volap_data::{DataGen, QueryGen};
use volap_dims::Schema;
use volap_tree::{build_store, StoreKind, TreeConfig};

fn main() {
    let n = scaled(30_000, 10_000);
    let n_queries = scaled(60, 15);
    let dims: Vec<usize> = if volap_bench::quick_mode() {
        vec![4, 16, 32, 64]
    } else {
        (1..=16).map(|i| i * 4).collect()
    };
    let kinds = [
        ("R-Tree", StoreKind::RTree),
        ("Hilbert R-Tree", StoreKind::HilbertRTree),
        ("PDC-Tree", StoreKind::PdcMds),
        ("Hilbert PDC-Tree", StoreKind::HilbertPdcMds),
    ];

    println!("# Figure 5: latency vs dimensions (N = {n}, uniform schema, 2 levels x fanout 16)");
    println!(
        "{:<6} {:<18} {:>14} {:>14} {:>14}",
        "dims", "tree", "insert_us", "query_ms", "query_p95_ms"
    );
    for &d in &dims {
        let schema = Schema::uniform(d, 2, 16);
        // Skewed data with anchored queries so coverage stays meaningful at
        // every d; the conventional R-trees must visit every covered item
        // (no cached aggregates), while the PDC variants answer covered
        // subtrees from node caches — the gap the paper's Figure 5 shows.
        let mut gen = DataGen::new(&schema, 600 + d as u64, 1.5);
        let items = gen.items(n);
        let sample = &items[..items.len().min(5_000)];
        let root_prob = (1.0 - 2.0 / d as f64).max(0.4);
        let mut qg = QueryGen::new(&schema, 700 + d as u64, root_prob);
        let queries: Vec<_> = (0..n_queries).map(|_| qg.query(sample)).collect();

        for (name, kind) in kinds {
            let store = build_store(kind, &schema, &TreeConfig::default());
            let t = Instant::now();
            for it in &items {
                store.insert(it);
            }
            let insert_us = t.elapsed().as_secs_f64() * 1e6 / n as f64;
            let mut lats = Vec::with_capacity(queries.len());
            let mut checksum = 0u64;
            for q in &queries {
                let t = Instant::now();
                checksum = checksum.wrapping_add(store.query(q).count);
                lats.push(t.elapsed().as_secs_f64());
            }
            let st = LatencyStats::from_samples(lats);
            println!(
                "{:<6} {:<18} {:>14.2} {:>14.4} {:>14.4}   # checksum {checksum}",
                d,
                name,
                insert_us,
                st.mean * 1e3,
                st.p95 * 1e3
            );
        }
    }
    println!("# paper shape: R-tree query latency explodes past ~16 dims; PDC variants stay flat;");
    println!("# geometric insert cost rises with dims, Hilbert insert cost stays nearly flat");
}
