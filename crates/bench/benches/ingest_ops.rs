//! Criterion microbenchmarks: the batched ingest pipeline.
//!
//! Tracks the tree-level `insert_batch` speedup over per-item `insert` at
//! several batch sizes, and the cost of bulk Hilbert key derivation — the
//! two levers behind `VolapConfig::ingest_batch`. `bench_insert` (bin)
//! records the headline per-item-vs-batched number to `BENCH_insert.json`;
//! these benches watch the same path at criterion precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use volap_data::DataGen;
use volap_dims::{HilbertMapper, Mds, Schema};
use volap_tree::{ConcurrentTree, InsertPolicy, TreeConfig};

fn fresh(schema: &Schema) -> ConcurrentTree<Mds> {
    ConcurrentTree::new(schema.clone(), InsertPolicy::Hilbert { expand: true }, TreeConfig::default())
}

fn bench_insert_batch(c: &mut Criterion) {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 21, 1.5);
    let items = gen.items(50_000);
    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    group.bench_function("per_item", |b| {
        b.iter(|| {
            let tree = fresh(&schema);
            for it in &items {
                tree.insert(it);
            }
            tree.len()
        })
    });
    for chunk in [1_024usize, 16_384, 65_536] {
        group.bench_with_input(BenchmarkId::new("batched", chunk), &items, |b, items| {
            b.iter(|| {
                let tree = fresh(&schema);
                for c in items.chunks(chunk) {
                    tree.insert_batch(c);
                }
                tree.len()
            })
        });
    }
    group.finish();
}

fn bench_key_batch(c: &mut Criterion) {
    let schema = Schema::tpcds();
    let mut gen = DataGen::new(&schema, 22, 1.5);
    let items = gen.items(10_000);
    let mut group = c.benchmark_group("hilbert_keys");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.bench_function("key_batch_10k", |b| {
        let mapper = HilbertMapper::new(&schema, true);
        let mut keys = mapper.batch();
        b.iter(|| {
            let mut bits = 0u64;
            for it in &items {
                bits += u64::from(keys.key(it).bit_len());
            }
            bits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_insert_batch, bench_key_batch);
criterion_main!(benches);
