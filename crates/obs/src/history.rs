//! The metrics time-series ring: fixed-interval frames of registry deltas.
//!
//! Every other observability surface in this crate is a point-in-time view;
//! this module adds *time*. A dedicated sampler thread (owned by the
//! cluster) calls [`History::capture`] once per `history_interval`, which
//! walks the [`Registry`], the [`HeatMap`], the [`EventLog`] drop counters,
//! and the process-global lock classes, and folds them into one [`Frame`]:
//!
//! * counters → the **interval delta** (stored exactly; divide by the frame
//!   length for a rate). Deltas across the retained frames sum back to the
//!   live totals, which is what the exactness tests assert.
//! * histograms → the interval's observation-count delta plus interval
//!   p50/p99 computed from the log2 bucket deltas. Intervals with no
//!   observations carry the previous quantiles forward, so sparse series
//!   (staleness between sync rounds) don't flap health rules.
//! * gauges → sampled as-is.
//! * derived series → heat-rate spread/imbalance across shards, per-class
//!   lock `contention_frac`, the waited-seconds-per-second `lock_wait_frac`,
//!   and event-ring drop/record deltas.
//!
//! Frames live in a bounded ring of [`History::capacity`] entries. The
//! steady-state capture path performs **zero heap allocation**: series are
//! interned once (indices are append-only and stable), keys are rebuilt in
//! a reused buffer for lookup, scratch and frame value vectors are reused,
//! and evicting the oldest frame recycles its allocation. A runtime kill
//! switch ([`History::set_enabled`]) reduces a disabled capture to one
//! relaxed load.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::account::Accounting;
use crate::events::EventLog;
use crate::heat::HeatMap;
use crate::lock;
use crate::registry::{bucket_le_seconds, MetricView, Registry, HIST_BUCKETS};

/// How a series' per-frame value is to be interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Interval delta of a monotonic counter (exact; divide by the frame
    /// length for a per-second rate).
    Rate,
    /// A value sampled at frame end (registry gauges and derived series
    /// like spreads and fractions).
    Gauge,
    /// Interval p50 computed from histogram bucket deltas (carried forward
    /// over empty intervals).
    P50,
    /// Interval p99, same semantics as [`SeriesKind::P50`].
    P99,
}

impl SeriesKind {
    /// Stable string form, used in series keys and the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Rate => "rate",
            SeriesKind::Gauge => "gauge",
            SeriesKind::P50 => "p50",
            SeriesKind::P99 => "p99",
        }
    }

}

impl std::str::FromStr for SeriesKind {
    type Err = String;

    /// Parse the string form back (exporter parser).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "rate" => Ok(SeriesKind::Rate),
            "gauge" => Ok(SeriesKind::Gauge),
            "p50" => Ok(SeriesKind::P50),
            "p99" => Ok(SeriesKind::P99),
            other => Err(format!("unknown series kind {other:?}")),
        }
    }
}

/// One column of the history ring: a canonical key like
/// `rate(volap_server_inserts_total{server=server-0})` or
/// `gauge(heat_insert_rate_spread)` plus its value semantics. Health-rule
/// selectors are these keys verbatim.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesDef {
    /// Canonical key: `kind(name)` or `kind(name{label_key=label_value})`.
    pub key: String,
    /// Value semantics.
    pub kind: SeriesKind,
}

/// Build the canonical series key into `buf` (cleared first).
fn write_key(buf: &mut String, kind: SeriesKind, name: &str, label: Option<(&str, &str)>) {
    buf.clear();
    match label {
        None => {
            let _ = write!(buf, "{}({name})", kind.as_str());
        }
        Some((k, v)) => {
            let _ = write!(buf, "{}({name}{{{k}={v}}})", kind.as_str());
        }
    }
}

/// The canonical key for a series, as an owned string (tests, rule
/// construction). The sampler itself never calls this on the hot path.
pub fn series_key(kind: SeriesKind, name: &str, label: Option<(&str, &str)>) -> String {
    let mut s = String::new();
    write_key(&mut s, kind, name, label);
    s
}

/// One sampled interval. `values[i]` belongs to `series[i]` of the owning
/// snapshot; frames captured before a series first appeared are shorter
/// than the series list (missing = "series did not exist yet").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Frame {
    /// Monotonic frame number (survives ring eviction, so gaps in a
    /// snapshot's `seq` range mean frames were dropped).
    pub seq: u64,
    /// Interval start, microseconds since the observability epoch.
    pub start_us: u64,
    /// Interval end (capture time), microseconds since the epoch.
    pub end_us: u64,
    /// Per-series values, indexed like `HistorySnapshot::series`.
    pub values: Vec<f64>,
}

impl Frame {
    /// Interval length in seconds.
    pub fn dt_seconds(&self) -> f64 {
        (self.end_us.saturating_sub(self.start_us)) as f64 * 1e-6
    }
}

/// Sizing and switch for the history ring (the `VolapConfig::history_*`
/// knobs upstream).
#[derive(Clone, Debug)]
pub struct HistoryConfig {
    /// Whether capture starts enabled (runtime-togglable).
    pub enabled: bool,
    /// Nominal sampling interval (the cluster's sampler thread period;
    /// recorded in snapshots as metadata — frames carry their real bounds).
    pub interval: Duration,
    /// Frames retained; `0` disables the ring entirely.
    pub capacity: usize,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        Self { enabled: true, interval: Duration::from_millis(250), capacity: 240 }
    }
}

/// Per-series sampler state, parallel to the interned series list.
#[derive(Clone, Copy, Default)]
struct SeriesState {
    /// Rate kind: previous cumulative total (counters, wait-ns sums).
    prev_total: u64,
    /// P50/P99 kinds: last computed quantile, carried forward over empty
    /// intervals.
    carry: f64,
}

/// Per-histogram sampler state: previous bucket array for delta quantiles.
struct HistTrack {
    rate_idx: usize,
    p50_idx: usize,
    p99_idx: usize,
    prev_count: u64,
    prev_buckets: [u64; HIST_BUCKETS],
}

#[derive(Default)]
struct State {
    series: Vec<SeriesDef>,
    sstate: Vec<SeriesState>,
    index: BTreeMap<String, usize>,
    hists: Vec<HistTrack>,
    hist_index: BTreeMap<String, usize>,
    ring: Vec<Frame>,
    /// Oldest frame's slot once the ring is full; 0 while filling.
    head: usize,
    len: usize,
    next_seq: u64,
    dropped: u64,
    last_end_us: u64,
    scratch: Vec<f64>,
    key_buf: String,
}

impl State {
    /// Get-or-create the series index for `kind(name{label})`. Allocates
    /// only on first sight of a series.
    fn intern(&mut self, kind: SeriesKind, name: &str, label: Option<(&str, &str)>) -> usize {
        let mut key_buf = std::mem::take(&mut self.key_buf);
        write_key(&mut key_buf, kind, name, label);
        let idx = match self.index.get(key_buf.as_str()) {
            Some(&i) => i,
            None => {
                let i = self.series.len();
                self.index.insert(key_buf.clone(), i);
                self.series.push(SeriesDef { key: key_buf.clone(), kind });
                self.sstate.push(SeriesState::default());
                i
            }
        };
        self.key_buf = key_buf;
        idx
    }

    /// Write a value into the scratch frame (non-finite values are
    /// recorded as 0 — frames must round-trip through JSON).
    fn set(&mut self, idx: usize, v: f64) {
        if idx >= self.scratch.len() {
            self.scratch.resize(idx + 1, 0.0);
        }
        self.scratch[idx] = if v.is_finite() { v } else { 0.0 };
    }

    /// Record a monotonic total as a [`SeriesKind::Rate`] series: the
    /// stored value is `scale * (total - prev_total)`.
    fn record_total(
        &mut self,
        name: &str,
        label: Option<(&str, &str)>,
        total: u64,
        scale: f64,
    ) -> f64 {
        let i = self.intern(SeriesKind::Rate, name, label);
        let delta = total.saturating_sub(self.sstate[i].prev_total);
        self.sstate[i].prev_total = total;
        let v = delta as f64 * scale;
        self.set(i, v);
        v
    }
}

/// Quantile of an interval's delta distribution, from per-bucket deltas.
/// Clipped to the last finite bucket bound so every stored value is finite.
fn delta_quantile(delta: &[u64; HIST_BUCKETS], total: u64, q: f64) -> f64 {
    debug_assert!(total > 0);
    let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (i, &d) in delta.iter().enumerate().take(HIST_BUCKETS - 1) {
        cum += d;
        if cum >= target {
            return bucket_le_seconds(i);
        }
    }
    bucket_le_seconds(HIST_BUCKETS - 2)
}

struct HistoryInner {
    enabled: AtomicBool,
    interval_us: u64,
    capacity: usize,
    epoch: Instant,
    state: Mutex<State>,
}

/// The bounded time-series ring. Cheap to clone (shared); one writer (the
/// sampler thread or a test driving [`History::capture`] directly), any
/// number of snapshot readers.
#[derive(Clone)]
pub struct History {
    inner: Arc<HistoryInner>,
}

impl History {
    /// Build a ring per `cfg`, with interval timestamps measured from
    /// `epoch` (the owning `Obs`'s construction instant, so frame times
    /// align with event timestamps and snapshot uptime).
    pub fn new(cfg: &HistoryConfig, epoch: Instant) -> Self {
        Self {
            inner: Arc::new(HistoryInner {
                enabled: AtomicBool::new(cfg.enabled),
                interval_us: cfg.interval.as_micros() as u64,
                capacity: cfg.capacity,
                epoch,
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// Whether capture is currently enabled.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Runtime kill switch: a disabled [`History::capture`] is one relaxed
    /// load and a branch (the sampler thread keeps ticking; benches flip
    /// this between segments).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Frames retained at capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Capture one frame: walk the registry, heat map, event-ring counters,
    /// and lock classes, and append interval deltas/samples to the ring.
    /// When an accounting core is supplied its sketches take one EWMA
    /// decay step and the dominance fraction lands in the derived
    /// `gauge(accounting_dominance_frac)` series (so the window advances
    /// exactly once per captured frame). Returns `false` (and records
    /// nothing) when disabled, sized to zero, or when no time has passed
    /// since the previous frame.
    pub fn capture(
        &self,
        registry: &Registry,
        heat: &HeatMap,
        events: &EventLog,
        accounting: Option<&Accounting>,
    ) -> bool {
        if self.inner.capacity == 0 || !self.enabled() {
            return false;
        }
        let now_us = self.inner.epoch.elapsed().as_micros() as u64;
        let mut guard = self.inner.state.lock().unwrap();
        let st = &mut *guard;
        let start_us = st.last_end_us;
        if now_us <= start_us {
            return false;
        }
        let dt_s = (now_us - start_us) as f64 * 1e-6;

        st.scratch.clear();
        st.scratch.resize(st.series.len(), 0.0);

        // Registry: counters → deltas, gauges → samples, histograms →
        // count delta + interval quantiles from bucket deltas.
        registry.visit(|id, view| {
            let label = id.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str()));
            match view {
                MetricView::Counter(total) => {
                    st.record_total(&id.name, label, total, 1.0);
                }
                MetricView::Gauge(v) => {
                    let i = st.intern(SeriesKind::Gauge, &id.name, label);
                    st.set(i, v as f64);
                }
                MetricView::Histogram(h) => {
                    // The rate-series key doubles as the histogram-track key.
                    let rate_idx = st.intern(SeriesKind::Rate, &id.name, label);
                    let ti = match st.hist_index.get(st.series[rate_idx].key.as_str()).copied() {
                        Some(t) => t,
                        None => {
                            let p50_idx = st.intern(SeriesKind::P50, &id.name, label);
                            let p99_idx = st.intern(SeriesKind::P99, &id.name, label);
                            let t = st.hists.len();
                            st.hist_index.insert(st.series[rate_idx].key.clone(), t);
                            st.hists.push(HistTrack {
                                rate_idx,
                                p50_idx,
                                p99_idx,
                                prev_count: 0,
                                prev_buckets: [0; HIST_BUCKETS],
                            });
                            t
                        }
                    };
                    let tr = &mut st.hists[ti];
                    let (rate_idx, p50_idx, p99_idx) = (tr.rate_idx, tr.p50_idx, tr.p99_idx);
                    let dcount = h.count.saturating_sub(tr.prev_count);
                    let mut delta = [0u64; HIST_BUCKETS];
                    let mut dtotal = 0u64;
                    for (d, (&cur, &prev)) in delta
                        .iter_mut()
                        .zip(h.buckets.iter().zip(tr.prev_buckets.iter()))
                    {
                        *d = cur.saturating_sub(prev);
                        dtotal += *d;
                    }
                    tr.prev_count = h.count;
                    tr.prev_buckets = h.buckets;
                    if dtotal > 0 {
                        st.sstate[p50_idx].carry = delta_quantile(&delta, dtotal, 0.50);
                        st.sstate[p99_idx].carry = delta_quantile(&delta, dtotal, 0.99);
                    }
                    let (v50, v99) = (st.sstate[p50_idx].carry, st.sstate[p99_idx].carry);
                    st.set(rate_idx, dcount as f64);
                    st.set(p50_idx, v50);
                    st.set(p99_idx, v99);
                }
            }
        });

        // Event ring: recorded/dropped totals as delta series.
        st.record_total("volap_events_recorded_total", None, events.recorded(), 1.0);
        st.record_total("volap_events_dropped_total", None, events.dropped(), 1.0);

        // Heat: spread (max − min EWMA rate across shards) and imbalance
        // (hottest shard over the mean) as derived gauges.
        let (mut n, mut ins_min, mut ins_max, mut ins_sum) = (0u64, f64::INFINITY, 0f64, 0f64);
        let (mut q_min, mut q_max) = (f64::INFINITY, 0f64);
        heat.visit(|e| {
            n += 1;
            ins_min = ins_min.min(e.insert_rate);
            ins_max = ins_max.max(e.insert_rate);
            ins_sum += e.insert_rate;
            q_min = q_min.min(e.query_rate);
            q_max = q_max.max(e.query_rate);
        });
        let ins_spread = if n >= 2 { ins_max - ins_min } else { 0.0 };
        let q_spread = if n >= 2 { q_max - q_min } else { 0.0 };
        let imbalance = if n > 0 && ins_sum > 0.0 { ins_max / (ins_sum / n as f64) } else { 1.0 };
        let i = st.intern(SeriesKind::Gauge, "heat_insert_rate_spread", None);
        st.set(i, ins_spread);
        let i = st.intern(SeriesKind::Gauge, "heat_query_rate_spread", None);
        st.set(i, q_spread);
        let i = st.intern(SeriesKind::Gauge, "heat_insert_imbalance", None);
        st.set(i, imbalance);

        // Lock classes: per-class acquisition/contention deltas, the
        // interval contention fraction, and the waited-seconds-per-second
        // fraction across all classes.
        let (mut max_frac, mut wait_delta_s) = (0f64, 0f64);
        lock::visit_classes(|name, acq, cont, wait_ns| {
            let label = Some(("class", name));
            let d_acq = st.record_total("volap_lock_acquisitions_total", label, acq, 1.0);
            let d_cont = st.record_total("volap_lock_contended_total", label, cont, 1.0);
            wait_delta_s += st.record_total("volap_lock_wait_seconds_total", label, wait_ns, 1e-9);
            let frac = if d_acq > 0.0 { d_cont / d_acq } else { 0.0 };
            max_frac = max_frac.max(frac);
            let i = st.intern(SeriesKind::Gauge, "lock_contention_frac", label);
            st.set(i, frac);
        });
        let i = st.intern(SeriesKind::Gauge, "lock_contention_frac_max", None);
        st.set(i, max_frac);
        let i = st.intern(SeriesKind::Gauge, "lock_wait_frac", None);
        st.set(i, wait_delta_s / dt_s);

        // Accounting: advance the heavy-hitter EWMA window one step and
        // record the hottest principal's share of the decayed scan weight.
        if let Some(acc) = accounting {
            let i = st.intern(SeriesKind::Gauge, "accounting_dominance_frac", None);
            let frac = acc.decay_tick();
            st.set(i, frac);
        }

        // Commit the frame, recycling the evicted slot's allocation.
        let slot = if st.len < self.inner.capacity {
            st.ring.push(Frame::default());
            st.len += 1;
            st.len - 1
        } else {
            let s = st.head;
            st.head = (st.head + 1) % self.inner.capacity;
            st.dropped += 1;
            s
        };
        let seq = st.next_seq;
        st.next_seq += 1;
        let State { ring, scratch, .. } = &mut *st;
        let frame = &mut ring[slot];
        frame.seq = seq;
        frame.start_us = start_us;
        frame.end_us = now_us;
        frame.values.clear();
        frame.values.extend_from_slice(scratch);
        st.last_end_us = now_us;
        true
    }

    /// Run `f` over the series table and the newest frame, without copying
    /// the ring (the watchdog's per-interval read). `None` until the first
    /// frame is captured.
    pub fn with_latest<R>(&self, f: impl FnOnce(&[SeriesDef], &Frame) -> R) -> Option<R> {
        let st = self.inner.state.lock().unwrap();
        if st.len == 0 {
            return None;
        }
        let newest = if st.len < self.inner.capacity {
            st.len - 1
        } else {
            (st.head + self.inner.capacity - 1) % self.inner.capacity
        };
        Some(f(&st.series, &st.ring[newest]))
    }

    /// Copy out the whole ring, frames oldest → newest.
    pub fn snapshot(&self) -> HistorySnapshot {
        let st = self.inner.state.lock().unwrap();
        let mut frames = Vec::with_capacity(st.len);
        for i in 0..st.len {
            let slot =
                if st.len < self.inner.capacity { i } else { (st.head + i) % self.inner.capacity };
            frames.push(st.ring[slot].clone());
        }
        HistorySnapshot {
            interval_us: self.inner.interval_us,
            capacity: self.inner.capacity as u64,
            dropped: st.dropped,
            series: st.series.clone(),
            frames,
        }
    }
}

/// A copied-out history ring: the series table plus frames oldest → newest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistorySnapshot {
    /// Nominal sampling interval in microseconds (frames carry their real
    /// bounds; this is the sampler's configured period).
    pub interval_us: u64,
    /// Ring capacity in frames.
    pub capacity: u64,
    /// Frames evicted so far (ring overwrites oldest-first).
    pub dropped: u64,
    /// Series table; `frames[*].values[i]` belongs to `series[i]`.
    pub series: Vec<SeriesDef>,
    /// Frames oldest → newest.
    pub frames: Vec<Frame>,
}

impl HistorySnapshot {
    /// Index of a series by canonical key.
    pub fn series_idx(&self, key: &str) -> Option<usize> {
        self.series.iter().position(|s| s.key == key)
    }

    /// The newest frame.
    pub fn latest(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// A frame's raw stored value for a series key (`None` if the series
    /// didn't exist yet when the frame was captured).
    pub fn value(&self, frame: &Frame, key: &str) -> Option<f64> {
        self.series_idx(key).and_then(|i| frame.values.get(i)).copied()
    }

    /// A frame's value normalized for comparison: [`SeriesKind::Rate`]
    /// deltas become per-second rates; everything else is raw.
    pub fn per_second(&self, frame: &Frame, key: &str) -> Option<f64> {
        let i = self.series_idx(key)?;
        let v = *frame.values.get(i)?;
        match self.series[i].kind {
            SeriesKind::Rate => {
                let dt = frame.dt_seconds();
                if dt > 0.0 {
                    Some(v / dt)
                } else {
                    Some(0.0)
                }
            }
            _ => Some(v),
        }
    }

    /// Sum of one series' deltas across every retained frame (exactness
    /// checks: with no frames dropped and a final capture after ingest
    /// stops, this equals the live counter total).
    pub fn delta_sum(&self, key: &str) -> f64 {
        match self.series_idx(key) {
            None => 0.0,
            Some(i) => {
                self.frames.iter().filter_map(|f| f.values.get(i)).sum()
            }
        }
    }

    /// Sum of `rate(name{..})` deltas across all label variants and frames.
    pub fn delta_sum_all_labels(&self, name: &str) -> f64 {
        let plain = format!("rate({name})");
        let labeled = format!("rate({name}{{");
        let mut total = 0.0;
        for (i, s) in self.series.iter().enumerate() {
            if s.kind == SeriesKind::Rate && (s.key == plain || s.key.starts_with(&labeled)) {
                total += self.frames.iter().filter_map(|f| f.values.get(i)).sum::<f64>();
            }
        }
        total
    }

    /// Per-second rate of `name`, summed across label variants, in one
    /// frame (the `--top` ingest/query columns).
    pub fn rate_sum(&self, frame: &Frame, name: &str) -> f64 {
        let dt = frame.dt_seconds();
        if dt <= 0.0 {
            return 0.0;
        }
        let plain = format!("rate({name})");
        let labeled = format!("rate({name}{{");
        let mut total = 0.0;
        for (i, s) in self.series.iter().enumerate() {
            if s.kind == SeriesKind::Rate && (s.key == plain || s.key.starts_with(&labeled)) {
                total += frame.values.get(i).copied().unwrap_or(0.0);
            }
        }
        total / dt
    }

    /// Structural validation: contiguous strictly-increasing seqs and
    /// interval bounds, value rows no wider than the series table, every
    /// value finite. `volap-stat --history` exits non-zero on `Err`.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev: Option<&Frame> = None;
        for f in &self.frames {
            if f.end_us < f.start_us {
                return Err(format!("frame {}: end {} before start {}", f.seq, f.end_us, f.start_us));
            }
            if f.values.len() > self.series.len() {
                return Err(format!(
                    "frame {}: {} values but only {} series",
                    f.seq,
                    f.values.len(),
                    self.series.len()
                ));
            }
            if let Some(v) = f.values.iter().find(|v| !v.is_finite()) {
                return Err(format!("frame {}: non-finite value {v}", f.seq));
            }
            if let Some(p) = prev {
                if f.seq != p.seq + 1 {
                    return Err(format!("frame seq jumps {} -> {}", p.seq, f.seq));
                }
                if f.start_us != p.end_us {
                    return Err(format!(
                        "frame {}: starts at {} but previous ended at {}",
                        f.seq, f.start_us, p.end_us
                    ));
                }
            }
            prev = Some(f);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn capture_env() -> (Registry, HeatMap, EventLog) {
        (Registry::new(true), HeatMap::new(true), EventLog::new(64))
    }

    fn ring(capacity: usize) -> History {
        History::new(
            &HistoryConfig { enabled: true, interval: Duration::from_millis(1), capacity },
            Instant::now(),
        )
    }

    #[test]
    fn counter_deltas_sum_to_live_total() {
        let (reg, heat, ev) = capture_env();
        let h = ring(64);
        let c = reg.counter_labeled("volap_t_total", "server", "s0");
        for add in [3u64, 0, 41, 7] {
            c.add(add);
            std::thread::sleep(Duration::from_millis(2));
            assert!(h.capture(&reg, &heat, &ev, None));
        }
        let snap = h.snapshot();
        assert_eq!(snap.frames.len(), 4);
        assert_eq!(snap.dropped, 0);
        let key = series_key(SeriesKind::Rate, "volap_t_total", Some(("server", "s0")));
        assert_eq!(snap.delta_sum(&key), 51.0);
        assert_eq!(snap.delta_sum_all_labels("volap_t_total"), 51.0);
        snap.validate().expect("well-formed ring");
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_seqs_contiguous() {
        let (reg, heat, ev) = capture_env();
        let h = ring(4);
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(1));
            assert!(h.capture(&reg, &heat, &ev, None));
        }
        let snap = h.snapshot();
        assert_eq!(snap.frames.len(), 4);
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.frames.first().unwrap().seq, 6);
        assert_eq!(snap.frames.last().unwrap().seq, 9);
        snap.validate().expect("evicted ring still contiguous");
    }

    #[test]
    fn quantiles_carry_forward_over_empty_intervals() {
        let (reg, heat, ev) = capture_env();
        let h = ring(16);
        let hist = reg.histogram("volap_lat_seconds");
        hist.observe_ns(1000);
        hist.observe_ns(1000);
        std::thread::sleep(Duration::from_millis(2));
        assert!(h.capture(&reg, &heat, &ev, None));
        // Nothing observed this interval: p50/p99 must carry forward.
        std::thread::sleep(Duration::from_millis(2));
        assert!(h.capture(&reg, &heat, &ev, None));
        let snap = h.snapshot();
        let p99 = series_key(SeriesKind::P99, "volap_lat_seconds", None);
        let first = snap.value(&snap.frames[0], &p99).unwrap();
        let second = snap.value(&snap.frames[1], &p99).unwrap();
        assert!(first > 0.0, "p99 of a 1000ns sample is positive");
        assert_eq!(first, second, "empty interval carries the quantile forward");
        let rate = series_key(SeriesKind::Rate, "volap_lat_seconds", None);
        assert_eq!(snap.value(&snap.frames[0], &rate), Some(2.0));
        assert_eq!(snap.value(&snap.frames[1], &rate), Some(0.0));
    }

    #[test]
    fn kill_switch_and_zero_capacity_disable_capture() {
        let (reg, heat, ev) = capture_env();
        let h = ring(8);
        h.set_enabled(false);
        std::thread::sleep(Duration::from_millis(1));
        assert!(!h.capture(&reg, &heat, &ev, None));
        h.set_enabled(true);
        std::thread::sleep(Duration::from_millis(1));
        assert!(h.capture(&reg, &heat, &ev, None));
        let none = ring(0);
        std::thread::sleep(Duration::from_millis(1));
        assert!(!none.capture(&reg, &heat, &ev, None));
        assert_eq!(none.snapshot().frames.len(), 0);
    }

    #[test]
    fn validate_rejects_corruption() {
        let (reg, heat, ev) = capture_env();
        let h = ring(8);
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(1));
            h.capture(&reg, &heat, &ev, None);
        }
        let good = h.snapshot();
        good.validate().unwrap();
        let mut bad = good.clone();
        bad.frames[1].seq += 5;
        assert!(bad.validate().is_err(), "seq gap detected");
        let mut bad = good.clone();
        bad.frames[2].start_us += 1;
        assert!(bad.validate().is_err(), "non-contiguous intervals detected");
        let mut bad = good.clone();
        bad.frames[0].values.push(f64::NAN);
        assert!(bad.validate().is_err(), "non-finite value detected");
    }

    #[test]
    fn derived_series_present() {
        let (reg, heat, ev) = capture_env();
        heat.publish(crate::heat::HeatEntry {
            shard: 1,
            insert_rate: 10.0,
            ..Default::default()
        });
        heat.publish(crate::heat::HeatEntry {
            shard: 2,
            insert_rate: 30.0,
            ..Default::default()
        });
        ev.record("x", "y".into());
        let h = ring(8);
        std::thread::sleep(Duration::from_millis(1));
        assert!(h.capture(&reg, &heat, &ev, None));
        let snap = h.snapshot();
        let f = snap.latest().unwrap();
        assert_eq!(snap.value(f, "gauge(heat_insert_rate_spread)"), Some(20.0));
        assert_eq!(snap.value(f, "gauge(heat_insert_imbalance)"), Some(1.5));
        assert_eq!(snap.value(f, "rate(volap_events_recorded_total)"), Some(1.0));
        assert!(snap.value(f, "gauge(lock_contention_frac_max)").is_some());
    }
}
