//! Property-based tests for per-principal accounting: the space-saving
//! sketch's error bound and decay behaviour on arbitrary streams, and
//! exporter round trips with a populated accounting section.

use proptest::prelude::*;
use volap_obs::{
    export, AccountConfig, CostVec, Obs, ObsConfig, SpaceSaving, COST_DIM_NAMES,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Metwally guarantee on any decay-free stream: every tracked
    /// principal's estimate never undercounts, overcounts by at most its
    /// recorded `err`, and `err ≤ N/k` where `N` is the total offered
    /// weight. Any principal whose true weight exceeds `N/k` is tracked.
    #[test]
    fn sketch_error_is_bounded_by_n_over_k(
        k in 1usize..12,
        stream in prop::collection::vec((0u32..20, 1u64..1_000), 1..300),
    ) {
        let mut sketch = SpaceSaving::new(k);
        let mut truth = std::collections::HashMap::<u32, u64>::new();
        for &(p, w) in &stream {
            sketch.offer(p, w);
            *truth.entry(p).or_default() += w;
        }
        let n: u64 = stream.iter().map(|&(_, w)| w).sum();
        prop_assert_eq!(sketch.offered(), n as f64, "offered total drifted");
        let bound = n as f64 / k.max(1) as f64;
        let entries = sketch.entries();
        prop_assert!(entries.len() <= k, "sketch exceeded its capacity");
        for &(p, count, err) in &entries {
            let true_w = truth[&p] as f64;
            prop_assert!(count >= true_w, "estimate undercounts {p}: {count} < {true_w}");
            prop_assert!(
                count - true_w <= err + 1e-9,
                "overestimate beyond recorded err for {p}: {count} - {true_w} > {err}"
            );
            prop_assert!(err <= bound + 1e-9, "err {err} exceeds N/k = {bound}");
        }
        // Completeness: a principal heavier than N/k cannot be evicted.
        for (&p, &w) in &truth {
            if w as f64 > bound {
                prop_assert!(
                    entries.iter().any(|&(q, _, _)| q == p),
                    "heavy principal {p} (weight {w} > {bound}) missing from the sketch"
                );
            }
        }
    }

    /// Decay is monotone: one tick scales every estimate and the offered
    /// total by alpha, never reorders surviving entries, and drops entries
    /// only when they fall below one unit of weight.
    #[test]
    fn sketch_decay_is_monotone_and_order_preserving(
        stream in prop::collection::vec((0u32..10, 1u64..500), 1..100),
        alpha_milli in 0u64..=1_000,
    ) {
        let alpha = alpha_milli as f64 / 1_000.0;
        let mut sketch = SpaceSaving::new(8);
        for &(p, w) in &stream {
            sketch.offer(p, w);
        }
        let before = sketch.entries();
        let offered_before = sketch.offered();
        sketch.decay(alpha);
        let after = sketch.entries();
        prop_assert!(
            (sketch.offered() - offered_before * alpha).abs() <= 1e-9 * offered_before.max(1.0),
            "offered total not scaled by alpha"
        );
        prop_assert!(after.len() <= before.len(), "decay minted entries");
        for &(p, count, err) in &after {
            let (_, c0, e0) = *before
                .iter()
                .find(|&&(q, _, _)| q == p)
                .expect("decay kept an entry that did not exist");
            prop_assert!((count - c0 * alpha).abs() <= 1e-9 * c0.max(1.0));
            prop_assert!((err - e0 * alpha).abs() <= 1e-9 * e0.max(1.0));
            prop_assert!(count >= 1.0, "entry below one unit survived decay");
        }
        // Surviving entries keep their relative order (uniform scaling).
        let order_before: Vec<u32> = before
            .iter()
            .filter(|&&(p, _, _)| after.iter().any(|&(q, _, _)| q == p))
            .map(|&(p, _, _)| p)
            .collect();
        let order_after: Vec<u32> = after.iter().map(|&(p, _, _)| p).collect();
        prop_assert_eq!(order_before, order_after, "decay reordered survivors");
    }

    /// Snapshots with a populated accounting section survive the JSON
    /// exporter losslessly and the Prometheus exporter up to its defined
    /// scope (metrics + accounting counter fold).
    #[test]
    fn exporters_round_trip_populated_accounting(
        topk in 1usize..10,
        charges in prop::collection::vec(
            ("[a-z]{1,8}", prop::collection::vec(any::<u32>(), 8..9)),
            1..20,
        ),
    ) {
        let cfg = ObsConfig {
            accounting: AccountConfig { topk, ..AccountConfig::default() },
            ..ObsConfig::default()
        };
        let obs = Obs::new(cfg);
        let acc = obs.accounting();
        for (name, dims) in &charges {
            let p = acc.intern(name);
            let mut a = [0u64; 8];
            for (slot, &v) in a.iter_mut().zip(dims.iter()) {
                *slot = u64::from(v);
            }
            acc.charge(p, &CostVec::from_array(a));
        }
        let snap = obs.snapshot();
        prop_assert!(!snap.accounting.principals.is_empty());
        prop_assert_eq!(snap.accounting.top.len(), COST_DIM_NAMES.len());
        let json_back = export::from_json(&export::to_json(&snap)).unwrap();
        prop_assert_eq!(&json_back, &snap, "JSON must round-trip accounting losslessly");
        let prom_back = export::from_prometheus(&export::to_prometheus(&snap)).unwrap();
        prop_assert_eq!(
            prom_back,
            snap.metrics_only(),
            "exposition must cover the accounting counter fold"
        );
    }
}
