//! The worker process: shard storage and OLAP operation service.
//!
//! Workers hold the data. Each shard lives in a [`ShardStore`]; a per-shard
//! *mapping table* entry tracks in-flight splits and migrations (§III-E):
//! while a shard is being split or serialized for migration, new inserts go
//! to an **insertion queue** (itself a shard store) that is queried together
//! with the main structure, so neither inserts nor queries ever stall.
//! After a split the entry becomes an alias routing old-ID traffic to the
//! two halves; after a migration it forwards to the destination worker.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use volap_dims::{Aggregate, Item, Key, QueryBox, Schema};
use volap_net::{Endpoint, Incoming, Network};
use volap_obs::lock::{self, LockClass, ObsMutex, ObsRwLock};
use volap_obs::{Counter, Gauge, HeatEntry, HeatMap, Histogram, RateEwma, SpanGuard, TraceCtx, Tracer};

/// Worker slice of the global lock hierarchy (DESIGN.md §15). Stats and
/// alias resolution hold the slot map while reading individual slot states,
/// so slots < slot_state; a slot state guard is held across store calls
/// that take tree locks (ranks 50+), so slot_state < every tree class. The
/// query-pool output accumulator is only ever taken after a scan returns,
/// but ranks above slot_state so a future combined path stays legal.
static SLOTS_CLASS: LockClass = LockClass::new("worker.slots", 30);
static SLOT_STATE_CLASS: LockClass = LockClass::new("worker.slot_state", 31);
static HEAT_TRACK_CLASS: LockClass = LockClass::new("worker.heat_track", 32);
static QUERY_OUT_CLASS: LockClass = LockClass::new("worker.query_out", 40);
use volap_tree::{build_store, deserialize_store, serial::encode_items, ShardStore, SplitPlan};

use crate::config::VolapConfig;
use crate::image::{ImageStore, ShardRecord};
use crate::plan::{ShardExec, WorkerExec};
use crate::proto::{Request, Response};

/// Observability handles registered once at spawn. Counters and gauges are
/// labeled per worker; latency histograms are shared deployment-wide.
struct WorkerObs {
    inserts: Counter,
    bulk_items: Counter,
    queries: Counter,
    /// Items diverted to an insertion queue while their shard was busy
    /// splitting or migrating (§III-E).
    queue_inserts: Counter,
    splits: Counter,
    migrations_out: Counter,
    adoptions: Counter,
    /// Active + busy shard slots on this worker.
    shards: Gauge,
    /// Total queued items across busy slots (non-zero only while a split
    /// or migration is in flight).
    queue_depth: Gauge,
    /// Total items held across active + busy stores.
    items: Gauge,
    /// Cumulative tree node splits across this worker's stores (scraped
    /// from shard statistics, so it trails by one stats period).
    node_splits: Gauge,
    insert_seconds: Histogram,
    bulk_insert_seconds: Histogram,
    query_seconds: Histogram,
    split_seconds: Histogram,
    migrate_seconds: Histogram,
}

impl WorkerObs {
    fn new(image: &ImageStore, name: &str) -> Self {
        let reg = image.obs().registry();
        Self {
            inserts: reg.counter_labeled("volap_worker_inserts_total", "worker", name),
            bulk_items: reg.counter_labeled("volap_worker_bulk_items_total", "worker", name),
            queries: reg.counter_labeled("volap_worker_queries_total", "worker", name),
            queue_inserts: reg.counter_labeled("volap_worker_queue_inserts_total", "worker", name),
            splits: reg.counter_labeled("volap_worker_splits_total", "worker", name),
            migrations_out: reg.counter_labeled("volap_worker_migrations_out_total", "worker", name),
            adoptions: reg.counter_labeled("volap_worker_adoptions_total", "worker", name),
            shards: reg.gauge_labeled("volap_worker_shards", "worker", name),
            queue_depth: reg.gauge_labeled("volap_worker_queue_depth", "worker", name),
            items: reg.gauge_labeled("volap_worker_items", "worker", name),
            node_splits: reg.gauge_labeled("volap_worker_tree_node_splits", "worker", name),
            insert_seconds: reg.histogram("volap_worker_insert_seconds"),
            bulk_insert_seconds: reg.histogram("volap_worker_bulk_insert_seconds"),
            query_seconds: reg.histogram("volap_worker_query_seconds"),
            split_seconds: reg.histogram("volap_worker_split_seconds"),
            migrate_seconds: reg.histogram("volap_worker_migrate_seconds"),
        }
    }
}

enum SlotState {
    /// Normal service.
    Active { store: Arc<dyn ShardStore> },
    /// Split or migration in progress: inserts land in `queue`; queries
    /// search `store` *and* `queue` (paper §III-E).
    Busy { store: Arc<dyn ShardStore>, queue: Arc<dyn ShardStore> },
    /// This shard was split; route by hyperplane to the two halves.
    SplitInto { left: u64, right: u64, plan: SplitPlan },
    /// This shard now lives on another worker; forward.
    MovedTo { dest: String },
}

/// Per-shard activity counters bumped on the hot path — relaxed atomics,
/// gated behind [`HeatMap::enabled`] so a disabled heat map costs one load
/// and a branch. The stats publisher folds the deltas into EWMA rates.
#[derive(Default)]
struct SlotHeat {
    inserts: AtomicU64,
    queries: AtomicU64,
}

struct Slot {
    state: ObsRwLock<SlotState>,
    heat: SlotHeat,
}

impl Slot {
    fn new(state: SlotState) -> Arc<Self> {
        Arc::new(Self {
            state: ObsRwLock::new(&SLOT_STATE_CLASS, state),
            heat: SlotHeat::default(),
        })
    }
}

/// EWMA state the stats thread keeps per shard between publishes.
struct HeatTrack {
    last: Instant,
    prev_inserts: u64,
    prev_queries: u64,
    insert_rate: RateEwma,
    query_rate: RateEwma,
}

struct WorkerState {
    name: String,
    schema: Schema,
    cfg: VolapConfig,
    endpoint: Endpoint,
    image: ImageStore,
    slots: ObsRwLock<HashMap<u64, Arc<Slot>>>,
    /// Pool for fanning one query's local shard scans out in parallel
    /// (`None` when `cfg.query_threads == 1`).
    query_pool: Option<rayon::ThreadPool>,
    /// Cluster-wide heat view this worker publishes into.
    heat: HeatMap,
    /// Per-shard EWMA state, touched only by the stats thread.
    heat_track: ObsMutex<HashMap<u64, HeatTrack>>,
    obs: WorkerObs,
    /// Causal tracer: workers inherit sampled contexts from envelopes and
    /// record queue-wait, op, and per-shard execution spans under them.
    tracer: Tracer,
}

/// Handle to a running worker: name plus the machinery to stop it.
pub struct WorkerHandle {
    /// The worker's endpoint name.
    pub name: String,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerHandle {
    /// Signal shutdown and join all service threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Spawn a worker with `cfg.worker_threads` service threads plus a
/// statistics publisher.
pub fn spawn_worker(net: &Network, image: &ImageStore, cfg: &VolapConfig, name: &str) -> WorkerHandle {
    let endpoint = net.endpoint(name.to_string());
    // Liveness: membership is an ephemeral node under a heartbeated
    // session; if this worker dies, the node expires and the manager
    // removes its shard records.
    let session_ttl = (cfg.stats_period * 10).max(Duration::from_millis(500));
    let session = image.coord().open_session(session_ttl);
    image.add_worker_ephemeral(name, session);
    let query_pool = (cfg.query_threads != 1).then(|| {
        let prefix = format!("{name}-query");
        rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.query_threads)
            .thread_name(move |i| format!("{prefix}{i}"))
            .build()
            .expect("build worker query pool")
    });
    let state = Arc::new(WorkerState {
        name: name.to_string(),
        schema: cfg.schema.clone(),
        cfg: cfg.clone(),
        endpoint: endpoint.clone(),
        image: image.clone(),
        slots: ObsRwLock::new(&SLOTS_CLASS, HashMap::new()),
        query_pool,
        heat: image.obs().heat().clone(),
        heat_track: ObsMutex::new(&HEAT_TRACK_CLASS, HashMap::new()),
        obs: WorkerObs::new(image, name),
        tracer: image.obs().tracer().clone(),
    });
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for t in 0..cfg.worker_threads.max(1) {
        let st = Arc::clone(&state);
        let stop = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name(format!("{name}-svc{t}"))
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        if let Ok(msg) = st.endpoint.recv(Duration::from_millis(20)) {
                            handle(&st, msg);
                        }
                    }
                })
                .expect("spawn worker thread"),
        );
    }
    // Statistics publisher: lets the manager plan and keeps image lens fresh.
    {
        let st = Arc::clone(&state);
        let stop = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name(format!("{name}-stats"))
                .spawn(move || {
                    while crate::util::sleep_unless_stopped(st.cfg.stats_period, &stop) {
                        st.image.coord().heartbeat(session);
                        publish_stats(&st);
                    }
                })
                .expect("spawn stats thread"),
        );
    }
    WorkerHandle { name: name.to_string(), shutdown, threads }
}

fn publish_stats(st: &WorkerState) {
    let slots: Vec<(u64, Arc<Slot>)> =
        st.slots.read().iter().map(|(&id, s)| (id, Arc::clone(s))).collect();
    let (mut live, mut items, mut queued, mut node_splits) = (0i64, 0i64, 0i64, 0i64);
    let heat_on = st.heat.enabled();
    for (id, slot) in slots {
        let rec = {
            let guard = slot.state.read();
            match &*guard {
                SlotState::Active { store } | SlotState::Busy { store, .. } => {
                    live += 1;
                    items += store.len() as i64;
                    node_splits += store.stats().node_splits as i64;
                    if let SlotState::Busy { queue, .. } = &*guard {
                        queued += queue.len() as i64;
                    }
                    Some(ShardRecord {
                        id,
                        worker: st.name.clone(),
                        len: store.len(),
                        mbr: store.mbr(),
                    })
                }
                _ => None,
            }
        };
        if let Some(rec) = rec {
            if heat_on {
                publish_heat(st, id, &slot, &rec);
            }
            st.image.merge_shard(&rec);
        }
    }
    st.obs.shards.set(live);
    st.obs.items.set(items);
    st.obs.queue_depth.set(queued);
    st.obs.node_splits.set(node_splits);
}

/// Fold one shard's hot-path counter deltas into its EWMA rates and publish
/// the resulting [`HeatEntry`]. A shard seen for the first time gets a
/// synthetic previous observation one stats period back, so its very first
/// rate reflects real elapsed time rather than an arbitrary epoch.
fn publish_heat(st: &WorkerState, id: u64, slot: &Slot, rec: &ShardRecord) {
    let now = Instant::now();
    let inserts = slot.heat.inserts.load(Ordering::Relaxed);
    let queries = slot.heat.queries.load(Ordering::Relaxed);
    let mut track = st.heat_track.lock();
    let tr = track.entry(id).or_insert_with(|| HeatTrack {
        last: now.checked_sub(st.cfg.stats_period).unwrap_or(now),
        prev_inserts: 0,
        prev_queries: 0,
        insert_rate: RateEwma::default(),
        query_rate: RateEwma::default(),
    });
    let dt = now.duration_since(tr.last);
    tr.insert_rate.update(inserts.saturating_sub(tr.prev_inserts), dt, st.cfg.heat_halflife);
    tr.query_rate.update(queries.saturating_sub(tr.prev_queries), dt, st.cfg.heat_halflife);
    tr.last = now;
    tr.prev_inserts = inserts;
    tr.prev_queries = queries;
    st.heat.publish(HeatEntry {
        shard: id,
        worker: st.name.clone(),
        items: rec.len,
        inserts_total: inserts,
        queries_total: queries,
        insert_rate: tr.insert_rate.rate(),
        query_rate: tr.query_rate.rate(),
        volume_frac: rec.mbr.volume_frac(&st.schema),
    });
}

fn reply(msg: &Incoming, resp: Response) {
    let _ = msg.reply(resp.encode());
}

/// Pick up a propagated trace context from an incoming envelope: records
/// the `worker_queue` span (the measured time the envelope waited in the
/// receive queue) as a sibling of the op, then opens the op span itself.
/// Returns the op's context (children hang off it) and its drop-recording
/// guard.
fn rx_trace(
    st: &Arc<WorkerState>,
    msg: &Incoming,
    op: &'static str,
) -> Option<(TraceCtx, SpanGuard)> {
    let ctx = msg.trace?;
    let now = st.tracer.now_us();
    let queued_us = msg.queued.as_micros().min(u128::from(u64::MAX)) as u64;
    let mut notes = vec![("worker".into(), st.name.clone())];
    if msg.principal != 0 {
        // Queue wait is a charged cost dimension; stamping who the envelope
        // belonged to lets a slow trace show whose work clogged the queue.
        notes.push(("principal".into(), msg.principal.to_string()));
    }
    st.tracer.record_manual(&ctx, "worker_queue", now.saturating_sub(queued_us), now, notes);
    let child = st.tracer.child(&ctx);
    let mut span = st.tracer.span(&child, op);
    span.annotate("worker", st.name.clone());
    Some((child, span))
}

fn handle(st: &Arc<WorkerState>, msg: Incoming) {
    let req = match Request::decode(&msg.payload) {
        Ok(r) => r,
        Err(e) => {
            reply(&msg, Response::Err(format!("bad request: {e}")));
            return;
        }
    };
    match req {
        Request::Ping => reply(&msg, Response::Ack),
        Request::Insert { shard, item } => {
            let t = rx_trace(st, &msg, "worker_insert");
            let resp = local_insert(st, shard, &item, false, t.as_ref().map(|(c, _)| c));
            drop(t);
            reply(&msg, resp);
        }
        Request::BulkInsert { shard, items } => {
            let t = rx_trace(st, &msg, "worker_bulk_insert");
            let resp = local_bulk_insert(st, shard, items, t.as_ref().map(|(c, _)| c));
            drop(t);
            reply(&msg, resp);
        }
        Request::Query { shards, query } => {
            let t = rx_trace(st, &msg, "worker_query");
            let resp = local_query(st, &shards, &query, t.as_ref().map(|(c, _)| c));
            drop(t);
            reply(&msg, resp);
        }
        Request::QueryAnalyze { shards, query } => {
            let t = rx_trace(st, &msg, "worker_query_analyze");
            let resp = local_query_analyzed(st, &shards, &query);
            drop(t);
            reply(&msg, resp);
        }
        Request::SplitShard { shard, left_id, right_id } => {
            let resp = do_split(st, shard, left_id, right_id);
            reply(&msg, resp);
        }
        Request::Migrate { shard, dest } => {
            let resp = do_migrate(st, shard, &dest);
            reply(&msg, resp);
        }
        Request::Adopt { shard, blob } => {
            let resp = do_adopt(st, shard, &blob);
            reply(&msg, resp);
        }
        Request::GetWorkerStats => {
            let mut shards = Vec::new();
            for (&id, slot) in st.slots.read().iter() {
                let guard = slot.state.read();
                if let SlotState::Active { store } | SlotState::Busy { store, .. } = &*guard {
                    shards.push(ShardRecord {
                        id,
                        worker: st.name.clone(),
                        len: store.len(),
                        mbr: store.mbr(),
                    });
                }
            }
            reply(&msg, Response::WorkerStats { shards });
        }
        other => reply(&msg, Response::Err(format!("unsupported worker request: {other:?}"))),
    }
}

/// Insert into a local shard, chasing aliases. `via_bulk_drain` suppresses
/// forwarding loops during queue drains.
fn local_insert(
    st: &Arc<WorkerState>,
    shard: u64,
    item: &Item,
    _via_bulk_drain: bool,
    trace: Option<&TraceCtx>,
) -> Response {
    let _timer = st.obs.insert_seconds.start();
    st.obs.inserts.inc();
    let mut target = shard;
    for _ in 0..64 {
        let slot = match st.slots.read().get(&target) {
            Some(s) => Arc::clone(s),
            None => return Response::Err(format!("unknown shard {target} on {}", st.name)),
        };
        let guard = slot.state.read();
        match &*guard {
            SlotState::Active { store } => {
                store.insert(item);
                if st.heat.enabled() {
                    slot.heat.inserts.fetch_add(1, Ordering::Relaxed);
                }
                return Response::Ack;
            }
            SlotState::Busy { queue, .. } => {
                st.obs.queue_inserts.inc();
                queue.insert(item);
                if st.heat.enabled() {
                    slot.heat.inserts.fetch_add(1, Ordering::Relaxed);
                }
                // Mark the insertion-queue detour so a trace shows this item
                // rode out a split/migration in the queue (§III-E).
                if let Some(ctx) = trace {
                    let now = st.tracer.now_us();
                    st.tracer.record_manual(
                        ctx,
                        "insertion_queue",
                        now,
                        now,
                        vec![("shard".into(), target.to_string())],
                    );
                }
                return Response::Ack;
            }
            SlotState::SplitInto { left, right, plan } => {
                target = if plan.side(item) { *right } else { *left };
            }
            SlotState::MovedTo { dest } => {
                let dest = dest.clone();
                drop(guard);
                return forward(
                    st,
                    &dest,
                    &Request::Insert { shard: target, item: item.clone() },
                    trace,
                );
            }
        }
    }
    Response::Err("alias chain too deep".into())
}

/// Insert a batch into a local shard, chasing aliases per shard *group*
/// rather than per item: a group landing on an Active store (or a Busy
/// shard's insertion queue) drains through the store's batch path in one
/// call; a split alias partitions the group by its hyperplane into two
/// child groups; a moved shard forwards its whole group as one
/// `BulkInsert`.
fn local_bulk_insert(
    st: &Arc<WorkerState>,
    shard: u64,
    items: Vec<Item>,
    trace: Option<&TraceCtx>,
) -> Response {
    let _timer = st.obs.bulk_insert_seconds.start();
    st.obs.bulk_items.add(items.len() as u64);
    let mut work: Vec<(u64, Vec<Item>, u32)> = vec![(shard, items, 0)];
    while let Some((id, group, depth)) = work.pop() {
        if group.is_empty() {
            continue;
        }
        if depth > 64 {
            return Response::Err("alias chain too deep".into());
        }
        let slot = match st.slots.read().get(&id) {
            Some(s) => Arc::clone(s),
            None => return Response::Err(format!("unknown shard {id} on {}", st.name)),
        };
        let guard = slot.state.read();
        // The state guard stays held across the Active/Busy inserts, like
        // the single-item path: `do_split` snapshots the store's items and
        // drains the queue under the write lock, so a batch inserted after
        // the guard dropped could land in an already-captured store or an
        // already-drained queue and vanish.
        match &*guard {
            SlotState::Active { store } => {
                if st.heat.enabled() {
                    slot.heat.inserts.fetch_add(group.len() as u64, Ordering::Relaxed);
                }
                store.bulk_insert(group);
            }
            SlotState::Busy { queue, .. } => {
                st.obs.queue_inserts.add(group.len() as u64);
                if st.heat.enabled() {
                    slot.heat.inserts.fetch_add(group.len() as u64, Ordering::Relaxed);
                }
                if let Some(ctx) = trace {
                    let now = st.tracer.now_us();
                    st.tracer.record_manual(
                        ctx,
                        "insertion_queue",
                        now,
                        now,
                        vec![("shard".into(), id.to_string()), ("items".into(), group.len().to_string())],
                    );
                }
                queue.bulk_insert(group);
            }
            SlotState::SplitInto { left, right, plan } => {
                let (l, r): (Vec<Item>, Vec<Item>) =
                    group.into_iter().partition(|it| !plan.side(it));
                work.push((*left, l, depth + 1));
                work.push((*right, r, depth + 1));
            }
            SlotState::MovedTo { dest } => {
                let dest = dest.clone();
                drop(guard);
                if let Response::Err(e) =
                    forward(st, &dest, &Request::BulkInsert { shard: id, items: group }, trace)
                {
                    return Response::Err(e);
                }
            }
        }
    }
    Response::Ack
}

/// One local store (plus its in-flight insertion queue, if splitting or
/// migrating) that a query must scan.
struct ScanTarget {
    /// Shard id (trace annotation only).
    id: u64,
    store: Arc<dyn ShardStore>,
    queue: Option<Arc<dyn ShardStore>>,
}

impl ScanTarget {
    fn query(&self, q: &QueryBox) -> Aggregate {
        let mut agg = self.store.query(q);
        if let Some(queue) = &self.queue {
            // The insertion queue is "queried along with the shard
            // itself" (§III-E).
            agg.merge(&queue.query(q));
        }
        agg
    }

    /// [`ScanTarget::query`] recording a `tree_exec` span under `parent`:
    /// per-shard traversal statistics ([`volap_tree::QueryTrace`]) become
    /// span annotations. Everything annotated here is a counter the
    /// traversal produced anyway or an O(1) read — a sampled scan must not
    /// pay a structure walk (`ShardStore::stats`) the unsampled one skips.
    fn query_spanned(&self, q: &QueryBox, tracer: &Tracer, parent: &TraceCtx) -> Aggregate {
        let start = tracer.now_us();
        let wait0 = lock::thread_wait_ns();
        let (mut agg, mut qt) = self.store.query_traced(q);
        if let Some(queue) = &self.queue {
            let (a, t) = queue.query_traced(q);
            agg.merge(&a);
            qt.merge(&t);
        }
        let waited = lock::thread_wait_ns() - wait0;
        let mut ann = vec![
            ("shard".into(), self.id.to_string()),
            ("items".into(), self.store.len().to_string()),
            ("nodes_visited".into(), qt.nodes_visited.to_string()),
            ("covered_hits".into(), qt.covered_hits.to_string()),
            ("items_scanned".into(), qt.items_scanned.to_string()),
            ("pruned".into(), qt.pruned.to_string()),
            ("rollup_hits".into(), qt.rollup_hits.to_string()),
        ];
        if waited > 0 {
            ann.push(("held_lock_wait_us".into(), (waited / 1_000).to_string()));
        }
        tracer.record_manual(parent, "tree_exec", start, tracer.now_us(), ann);
        agg
    }

    /// [`ScanTarget::query`] capturing the per-shard [`ShardExec`] record an
    /// ANALYZE plan carries: the exact traversal counters the tree layer
    /// measured, plus wall time and the shard's size at scan time.
    fn query_exec(&self, q: &QueryBox) -> (Aggregate, ShardExec) {
        let start = Instant::now();
        let (mut agg, mut qt) = self.store.query_traced(q);
        if let Some(queue) = &self.queue {
            let (a, t) = queue.query_traced(q);
            agg.merge(&a);
            qt.merge(&t);
        }
        let exec = ShardExec {
            shard: self.id,
            items: self.store.len(),
            nodes_visited: qt.nodes_visited,
            covered_hits: qt.covered_hits,
            items_scanned: qt.items_scanned,
            pruned: qt.pruned,
            rollup_hits: qt.rollup_hits,
            wall_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        };
        (agg, exec)
    }

    fn query_maybe_spanned(
        &self,
        q: &QueryBox,
        tracer: &Tracer,
        parent: Option<&TraceCtx>,
    ) -> Aggregate {
        match parent {
            Some(ctx) => self.query_spanned(q, tracer, ctx),
            None => self.query(q),
        }
    }
}

fn local_query(
    st: &Arc<WorkerState>,
    shards: &[u64],
    query: &QueryBox,
    trace: Option<&TraceCtx>,
) -> Response {
    let _timer = st.obs.query_seconds.start();
    st.obs.queries.inc();
    // Phase 1: chase aliases sequentially (cheap pointer work) to resolve
    // the local stores to scan and the per-destination remote batches.
    let mut scans: Vec<ScanTarget> = Vec::new();
    // Forwards accumulated per destination to batch remote shards.
    let mut remote: HashMap<String, Vec<u64>> = HashMap::new();
    let mut pending: Vec<u64> = shards.to_vec();
    // A server image transiently lists both a split parent and its halves
    // (halves are published before the parent is retired), so the request
    // may name a shard the alias chase also reaches. Scan each id once.
    let mut seen: HashSet<u64> = HashSet::new();
    let mut hops = 0;
    let heat_on = st.heat.enabled();
    while let Some(id) = pending.pop() {
        if !seen.insert(id) {
            continue;
        }
        hops += 1;
        if hops > 10_000 {
            return Response::Err("query alias expansion too deep".into());
        }
        let slot = match st.slots.read().get(&id) {
            Some(s) => Arc::clone(s),
            None => continue, // stale routing: shard no longer known here
        };
        let guard = slot.state.read();
        match &*guard {
            SlotState::Active { store } => {
                if heat_on {
                    slot.heat.queries.fetch_add(1, Ordering::Relaxed);
                }
                scans.push(ScanTarget { id, store: Arc::clone(store), queue: None });
            }
            SlotState::Busy { store, queue } => {
                if heat_on {
                    slot.heat.queries.fetch_add(1, Ordering::Relaxed);
                }
                scans.push(ScanTarget {
                    id,
                    store: Arc::clone(store),
                    queue: Some(Arc::clone(queue)),
                });
            }
            SlotState::SplitInto { left, right, .. } => {
                pending.push(*left);
                pending.push(*right);
            }
            SlotState::MovedTo { dest } => {
                remote.entry(dest.clone()).or_default().push(id);
            }
        }
    }
    // Phase 2: scan the resolved stores — in parallel over the worker's
    // query pool when there is one and more than one shard to search. Each
    // task aggregates privately and merges once at the end.
    let mut searched = scans.len() as u32;
    let tracer = &st.tracer;
    let mut agg = match &st.query_pool {
        Some(pool) if scans.len() > 1 => {
            let out = ObsMutex::new(&QUERY_OUT_CLASS, Aggregate::empty());
            pool.scope(|s| {
                let out = &out;
                for t in &scans {
                    s.spawn(move |_| {
                        let a = t.query_maybe_spanned(query, tracer, trace);
                        out.lock().merge(&a);
                    });
                }
            });
            out.into_inner()
        }
        _ => {
            let mut a = Aggregate::empty();
            for t in &scans {
                a.merge(&t.query_maybe_spanned(query, tracer, trace));
            }
            a
        }
    };
    for (dest, ids) in remote {
        match forward(st, &dest, &Request::Query { shards: ids, query: query.clone() }, trace) {
            Response::Agg { agg: a, shards_searched } => {
                agg.merge(&a);
                searched += shards_searched;
            }
            Response::Err(e) => return Response::Err(e),
            _ => return Response::Err("unexpected forward response".into()),
        }
    }
    Response::Agg { agg, shards_searched: searched }
}

/// [`local_query`] with plan capture: resolves and scans exactly like the
/// plain path, but additionally assembles the [`WorkerExec`] describing how
/// this worker ran its part of the query — alias chases counted during
/// resolution, per-shard [`ShardExec`] records, the parallel fan-out width,
/// and nested executions for shards forwarded to other workers.
fn local_query_analyzed(st: &Arc<WorkerState>, shards: &[u64], query: &QueryBox) -> Response {
    let _timer = st.obs.query_seconds.start();
    st.obs.queries.inc();
    let wall = Instant::now();
    let mut scans: Vec<ScanTarget> = Vec::new();
    let mut remote: HashMap<String, Vec<u64>> = HashMap::new();
    let mut pending: Vec<u64> = shards.to_vec();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut alias_chases: u32 = 0;
    let mut hops = 0;
    let heat_on = st.heat.enabled();
    while let Some(id) = pending.pop() {
        if !seen.insert(id) {
            continue;
        }
        hops += 1;
        if hops > 10_000 {
            return Response::Err("query alias expansion too deep".into());
        }
        let slot = match st.slots.read().get(&id) {
            Some(s) => Arc::clone(s),
            None => continue, // stale routing: shard no longer known here
        };
        let guard = slot.state.read();
        match &*guard {
            SlotState::Active { store } => {
                if heat_on {
                    slot.heat.queries.fetch_add(1, Ordering::Relaxed);
                }
                scans.push(ScanTarget { id, store: Arc::clone(store), queue: None });
            }
            SlotState::Busy { store, queue } => {
                if heat_on {
                    slot.heat.queries.fetch_add(1, Ordering::Relaxed);
                }
                scans.push(ScanTarget {
                    id,
                    store: Arc::clone(store),
                    queue: Some(Arc::clone(queue)),
                });
            }
            SlotState::SplitInto { left, right, .. } => {
                alias_chases += 1;
                pending.push(*left);
                pending.push(*right);
            }
            SlotState::MovedTo { dest } => {
                alias_chases += 1;
                remote.entry(dest.clone()).or_default().push(id);
            }
        }
    }
    let fanout = match &st.query_pool {
        Some(_) if scans.len() > 1 => scans.len() as u32,
        _ => scans.len().min(1) as u32,
    };
    let mut shard_execs: Vec<ShardExec> = Vec::with_capacity(scans.len());
    let mut agg = match &st.query_pool {
        Some(pool) if scans.len() > 1 => {
            let out = ObsMutex::new(&QUERY_OUT_CLASS, (Aggregate::empty(), Vec::with_capacity(scans.len())));
            pool.scope(|s| {
                let out = &out;
                for t in &scans {
                    s.spawn(move |_| {
                        let (a, e) = t.query_exec(query);
                        let mut g = out.lock();
                        g.0.merge(&a);
                        g.1.push(e);
                    });
                }
            });
            let (a, execs) = out.into_inner();
            shard_execs = execs;
            a
        }
        _ => {
            let mut a = Aggregate::empty();
            for t in &scans {
                let (pa, e) = t.query_exec(query);
                a.merge(&pa);
                shard_execs.push(e);
            }
            a
        }
    };
    shard_execs.sort_by_key(|e| e.shard);
    let mut searched = scans.len() as u32;
    let mut forwards: Vec<WorkerExec> = Vec::new();
    for (dest, ids) in remote {
        match forward(st, &dest, &Request::QueryAnalyze { shards: ids, query: query.clone() }, None)
        {
            Response::AggExec { agg: a, shards_searched, exec } => {
                agg.merge(&a);
                searched += shards_searched;
                forwards.push(exec);
            }
            Response::Err(e) => return Response::Err(e),
            _ => return Response::Err("unexpected forward response".into()),
        }
    }
    forwards.sort_by(|a, b| a.worker.cmp(&b.worker));
    let mut requested = shards.to_vec();
    requested.sort_unstable();
    requested.dedup();
    let exec = WorkerExec {
        worker: st.name.clone(),
        requested,
        alias_chases,
        fanout,
        wall_us: wall.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        shards: shard_execs,
        forwards,
    };
    Response::AggExec { agg, shards_searched: searched, exec }
}

fn forward(
    st: &Arc<WorkerState>,
    dest: &str,
    req: &Request,
    trace: Option<&TraceCtx>,
) -> Response {
    match st.endpoint.request_traced(dest, req.encode(), st.cfg.request_timeout, trace) {
        Ok(bytes) => Response::decode(&st.schema, &bytes)
            .unwrap_or_else(|e| Response::Err(format!("bad forwarded response: {e}"))),
        Err(e) => Response::Err(format!("forward to {dest} failed: {e}")),
    }
}

/// Fold an insertion queue back into its shard after an aborted split or
/// migration. Builds a fresh store instead of inserting into `store` in
/// place: an in-flight query may have captured the `(store, queue)` pair
/// and would count the queued items twice if they moved into `store`.
fn revert_merge(
    st: &WorkerState,
    store: &Arc<dyn ShardStore>,
    queue: &Arc<dyn ShardStore>,
) -> Arc<dyn ShardStore> {
    let queued = queue.items();
    if queued.is_empty() {
        return Arc::clone(store);
    }
    let mut items = store.items();
    items.extend(queued);
    let merged: Arc<dyn ShardStore> = build_store(st.cfg.store_kind, &st.schema, &st.cfg.tree_config()).into();
    merged.bulk_insert(items);
    merged
}

/// Split a shard in place (manager-initiated). The shard keeps serving
/// throughout: inserts go to the queue, queries search main + queue.
fn do_split(st: &Arc<WorkerState>, shard: u64, left_id: u64, right_id: u64) -> Response {
    let _timer = st.obs.split_seconds.start();
    let slot = match st.slots.read().get(&shard) {
        Some(s) => Arc::clone(s),
        None => return Response::Err(format!("unknown shard {shard}")),
    };
    // Enter Busy state.
    let store = {
        let mut guard = slot.state.write();
        match &*guard {
            SlotState::Active { store } => {
                let store = Arc::clone(store);
                let queue: Arc<dyn ShardStore> =
                    build_store(st.cfg.store_kind, &st.schema, &st.cfg.tree_config()).into();
                *guard = SlotState::Busy { store: Arc::clone(&store), queue };
                store
            }
            _ => return Response::Err(format!("shard {shard} busy or gone")),
        }
    };
    let Some(plan) = store.split_query() else {
        // Un-splittable (identical items): revert, preserving anything that
        // entered the queue meanwhile.
        let mut guard = slot.state.write();
        if let SlotState::Busy { store, queue } = &*guard {
            *guard = SlotState::Active { store: revert_merge(st, store, queue) };
        }
        return Response::Err(format!("shard {shard} cannot be split"));
    };
    let (left, right) = store.split(&plan);
    let (left, right): (Arc<dyn ShardStore>, Arc<dyn ShardStore>) = (left.into(), right.into());
    // Publish the halves into the slot map *before* taking the parent's
    // state lock: they are unreachable (in no alias chain and not yet in
    // the image) until the alias below makes them visible, and acquiring
    // `slots` (rank 30) while holding `slot_state` (rank 31) would invert
    // the lock hierarchy against the alias-chase paths, which hold the map
    // while reading slot states.
    {
        let mut slots = st.slots.write();
        slots.insert(left_id, Slot::new(SlotState::Active { store: Arc::clone(&left) }));
        slots.insert(right_id, Slot::new(SlotState::Active { store: Arc::clone(&right) }));
    }
    // Swap in the alias and drain the queue by hyperplane side. Holding the
    // state lock exclusively makes drain + alias swap atomic against
    // inserters, so no queued item is lost or double-counted.
    {
        let mut guard = slot.state.write();
        let queued = match &*guard {
            SlotState::Busy { queue, .. } => queue.items(),
            _ => Vec::new(),
        };
        for it in &queued {
            if plan.side(it) {
                right.insert(it);
            } else {
                left.insert(it);
            }
        }
        *guard = SlotState::SplitInto { left: left_id, right: right_id, plan };
    }
    st.heat.retire(shard, &st.name);
    st.heat_track.lock().remove(&shard);
    // Update the global image: old record out, halves in.
    let left_rec = ShardRecord { id: left_id, worker: st.name.clone(), len: left.len(), mbr: left.mbr() };
    let right_rec = ShardRecord { id: right_id, worker: st.name.clone(), len: right.len(), mbr: right.mbr() };
    // Publish the halves before retiring the parent so no server image ever
    // sees a routing gap (events are applied in order).
    st.image.merge_shard(&left_rec);
    st.image.merge_shard(&right_rec);
    let _ = st.image.remove_shard(shard);
    st.obs.splits.inc();
    // Splits are rare enough to afford a structure walk: the parent's shape
    // at split time (was it deep? leaf-heavy?) is the diagnostic that
    // explains why the manager chose it.
    let shape = store
        .stats()
        .annotations()
        .into_iter()
        .map(|(k, v)| format!(" {k}={v}"))
        .collect::<String>();
    st.image.obs().events().record(
        "shard_split",
        format!(
            "worker={} shard={shard} left={left_id}({}) right={right_id}({}){shape}",
            st.name, left_rec.len, right_rec.len
        ),
    );
    Response::SplitDone { left: left_rec, right: right_rec }
}

/// Migrate a shard to `dest` while continuing to serve it.
fn do_migrate(st: &Arc<WorkerState>, shard: u64, dest: &str) -> Response {
    if dest == st.name {
        return Response::Ack; // no-op
    }
    let _timer = st.obs.migrate_seconds.start();
    let slot = match st.slots.read().get(&shard) {
        Some(s) => Arc::clone(s),
        None => return Response::Err(format!("unknown shard {shard}")),
    };
    let store = {
        let mut guard = slot.state.write();
        match &*guard {
            SlotState::Active { store } => {
                let store = Arc::clone(store);
                let queue: Arc<dyn ShardStore> =
                    build_store(st.cfg.store_kind, &st.schema, &st.cfg.tree_config()).into();
                *guard = SlotState::Busy { store: Arc::clone(&store), queue };
                store
            }
            _ => return Response::Err(format!("shard {shard} busy or gone")),
        }
    };
    // Ship the serialized shard.
    let blob = store.serialize();
    match forward(st, dest, &Request::Adopt { shard, blob }, None) {
        Response::Ack => {}
        Response::Err(e) => {
            // Revert: fold the queue back in.
            let mut guard = slot.state.write();
            if let SlotState::Busy { store, queue } = &*guard {
                *guard = SlotState::Active { store: revert_merge(st, store, queue) };
            }
            return Response::Err(format!("adopt failed: {e}"));
        }
        _ => return Response::Err("unexpected adopt response".into()),
    }
    // Cut over: capture the queue, mark moved, ship the tail.
    let queued = {
        let mut guard = slot.state.write();
        let queued = match &*guard {
            SlotState::Busy { queue, .. } => queue.items(),
            _ => Vec::new(),
        };
        *guard = SlotState::MovedTo { dest: dest.to_string() };
        queued
    };
    st.heat.retire(shard, &st.name);
    st.heat_track.lock().remove(&shard);
    if !queued.is_empty() {
        if let Response::Err(e) =
            forward(st, dest, &Request::BulkInsert { shard, items: queued }, None)
        {
            return Response::Err(format!("queue drain failed: {e}"));
        }
    }
    // Publish the new location.
    st.image.merge_shard(&ShardRecord {
        id: shard,
        worker: dest.to_string(),
        len: store.len(),
        mbr: store.mbr(),
    });
    st.obs.migrations_out.inc();
    st.image.obs().events().record(
        "shard_migrate",
        format!("worker={} shard={shard} dest={dest} items={}", st.name, store.len()),
    );
    Response::Ack
}

fn do_adopt(st: &Arc<WorkerState>, shard: u64, blob: &[u8]) -> Response {
    match deserialize_store(st.cfg.store_kind, &st.schema, &st.cfg.tree_config(), blob) {
        Ok(store) => {
            let store: Arc<dyn ShardStore> = store.into();
            let rec = ShardRecord {
                id: shard,
                worker: st.name.clone(),
                len: store.len(),
                mbr: store.mbr(),
            };
            st.slots.write().insert(shard, Slot::new(SlotState::Active { store }));
            st.image.merge_shard(&rec);
            st.obs.adoptions.inc();
            // `gen=` stamps the adopter's image generation so the event joins
            // against ANALYZE plans and staleness probe data.
            st.image.obs().events().record(
                "shard_adopt",
                format!(
                    "worker={} shard={shard} items={} gen={}",
                    st.name,
                    rec.len,
                    st.image.generation()
                ),
            );
            Response::Ack
        }
        Err(e) => Response::Err(format!("adopt decode failed: {e}")),
    }
}

/// Create an empty shard on a worker by sending it an empty blob to adopt
/// (bootstrap helper).
pub fn create_empty_shard(
    endpoint: &Endpoint,
    worker: &str,
    schema: &Schema,
    shard: u64,
    timeout: Duration,
) -> Result<(), String> {
    let blob = encode_items(schema, &[]);
    let bytes = endpoint
        .request(worker, Request::Adopt { shard, blob }.encode(), timeout)
        .map_err(|e| e.to_string())?;
    match Response::decode(schema, &bytes) {
        Ok(Response::Ack) => Ok(()),
        Ok(Response::Err(e)) => Err(e),
        Ok(other) => Err(format!("unexpected response: {other:?}")),
        Err(e) => Err(e),
    }
}
