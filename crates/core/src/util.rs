//! Small internal utilities.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Sleep up to `period`, waking early (returning `false`) when `stop` is
/// set. Background threads use this so shutdown never waits out a long
/// period.
pub(crate) fn sleep_unless_stopped(period: Duration, stop: &AtomicBool) -> bool {
    let deadline = Instant::now() + period;
    loop {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wakes_early_on_stop() {
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&stop);
        let h = std::thread::spawn(move || {
            let t = Instant::now();
            let completed = sleep_unless_stopped(Duration::from_secs(3600), &s2);
            (completed, t.elapsed())
        });
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Release);
        let (completed, took) = h.join().unwrap();
        assert!(!completed);
        assert!(took < Duration::from_secs(2));
    }

    #[test]
    fn completes_short_sleeps() {
        let stop = AtomicBool::new(false);
        assert!(sleep_unless_stopped(Duration::from_millis(5), &stop));
    }
}
