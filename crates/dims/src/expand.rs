//! The Figure-3 hierarchical-ID expansion and Hilbert key mapping.

use crate::item::Item;
use crate::schema::Schema;
use volap_hilbert::{BigIndex, HilbertCurve};

/// Maps items to compact Hilbert keys, optionally applying the paper's
/// level expansion (Figure 3).
///
/// The problem the expansion solves: hierarchy levels have different bit
/// widths in different dimensions (a `Month` needs 4 bits, a `City` 6), so
/// the raw per-dimension ordinals give levels *different numeric weight* in
/// different dimensions. Keys higher in the tree are expressed at higher
/// hierarchy levels, and a Hilbert order computed on raw ordinals loses
/// locality for them. The fix: shift each level's bits left so that the
/// level spans the same numeric range in every dimension (the maximum width
/// of that level across dimensions), then compute a *compact* Hilbert index
/// over the widened coordinates. Only the Hilbert key sees the expansion —
/// tree keys and queries keep the raw ordinals.
///
/// With `expand == false` this degenerates to the Hilbert R-tree mapping
/// (raw ordinals), which the paper uses as a baseline.
#[derive(Debug, Clone)]
pub struct HilbertMapper {
    curve: HilbertCurve,
    /// Per dimension, per level: `(src_shift, bits, dst_shift)` — move
    /// `bits` bits of the ordinal at `src_shift` to `dst_shift` in the
    /// expanded coordinate.
    plan: Vec<Vec<(u32, u32, u32)>>,
    expand: bool,
}

impl HilbertMapper {
    /// Build a mapper for `schema`; `expand` selects the Figure-3 level
    /// expansion (true for the Hilbert PDC tree, false for the Hilbert
    /// R-tree baseline).
    pub fn new(schema: &Schema, expand: bool) -> Self {
        let mut widths = Vec::with_capacity(schema.dims());
        let mut plan = Vec::with_capacity(schema.dims());
        for dim in schema.dimensions() {
            if !expand {
                widths.push(dim.total_bits());
                plan.push(vec![(0, dim.total_bits(), 0)]);
                continue;
            }
            // Expanded width: each level widened to the schema-wide maximum
            // for that level.
            let exp_width: u32 = (1..=dim.depth()).map(|l| schema.max_level_bits(l)).sum();
            assert!(exp_width <= 64, "expanded dimension exceeds 64 bits");
            let mut level_plan = Vec::with_capacity(dim.depth());
            let mut dst_below = exp_width;
            for l in 1..=dim.depth() {
                let src_bits = dim.level_bits(l);
                let max_bits = schema.max_level_bits(l);
                dst_below -= max_bits;
                // Shift the level's bits left within its widened field so its
                // values span the field's numeric range (Figure 3).
                let dst_shift = dst_below + (max_bits - src_bits);
                level_plan.push((dim.remaining_bits(l), src_bits, dst_shift));
            }
            widths.push(exp_width);
            plan.push(level_plan);
        }
        Self { curve: HilbertCurve::new(&widths), plan, expand }
    }

    /// Whether the Figure-3 expansion is applied.
    #[inline]
    pub fn expands(&self) -> bool {
        self.expand
    }

    /// Bit width of produced keys.
    #[inline]
    pub fn key_bits(&self) -> u32 {
        self.curve.total_bits()
    }

    /// The expanded coordinate of `ordinal` in dimension `d`.
    #[inline]
    pub fn expand_ordinal(&self, d: usize, ordinal: u64) -> u64 {
        let mut out = 0u64;
        for &(src_shift, bits, dst_shift) in &self.plan[d] {
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            out |= ((ordinal >> src_shift) & mask) << dst_shift;
        }
        out
    }

    /// The compact Hilbert key of an item.
    pub fn key(&self, item: &Item) -> BigIndex {
        self.key_of_coords(&item.coords)
    }

    /// The compact Hilbert key of raw per-dimension ordinals.
    pub fn key_of_coords(&self, coords: &[u64]) -> BigIndex {
        self.batch().key_of_coords(coords)
    }

    /// Start a batch key computation that reuses the level-expansion buffer
    /// across items. Keys themselves are inline (no heap) for widths up to
    /// 256 bits, so this makes the whole per-item key path allocation-free.
    pub fn batch(&self) -> KeyBatch<'_> {
        KeyBatch {
            mapper: self,
            expanded: Vec::with_capacity(self.plan.len()),
        }
    }
}

/// Reusable scratch for computing many Hilbert keys: the expanded-coordinate
/// buffer is allocated once and shared by every [`KeyBatch::key`] call.
#[derive(Debug)]
pub struct KeyBatch<'a> {
    mapper: &'a HilbertMapper,
    expanded: Vec<u64>,
}

impl KeyBatch<'_> {
    /// The compact Hilbert key of an item.
    #[inline]
    pub fn key(&mut self, item: &Item) -> BigIndex {
        self.key_of_coords(&item.coords)
    }

    /// The compact Hilbert key of raw per-dimension ordinals.
    pub fn key_of_coords(&mut self, coords: &[u64]) -> BigIndex {
        debug_assert_eq!(coords.len(), self.mapper.plan.len());
        self.expanded.clear();
        self.expanded.extend(
            coords
                .iter()
                .enumerate()
                .map(|(d, &c)| self.mapper.expand_ordinal(d, c)),
        );
        let mut out = BigIndex::with_bit_capacity(self.mapper.curve.total_bits());
        self.mapper.curve.index_into(&self.expanded, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DimensionDef, LevelDef};

    /// The Figure-3 example: dimension 1 with levels of 4 bits each,
    /// dimension 2 with levels (4, 1?) — we model the essence: level widths
    /// differing across dimensions get left-shifted into the widened field.
    #[test]
    fn expansion_shifts_into_widened_fields() {
        let schema = Schema::new(
            vec![
                DimensionDef::new(
                    "D1",
                    vec![LevelDef::new("L1", 16), LevelDef::new("L2", 16)], // 4+4 bits
                ),
                DimensionDef::new(
                    "D2",
                    vec![LevelDef::new("L1", 16), LevelDef::new("L2", 4)], // 4+2 bits
                ),
            ],
            4,
        );
        let m = HilbertMapper::new(&schema, true);
        // Widened level widths: L1 -> 4, L2 -> 4. D1 is unchanged.
        let d1 = schema.dim(0).ordinal(&[0b1010, 0b0110]);
        assert_eq!(m.expand_ordinal(0, d1), 0b1010_0110);
        // D2's L2 (2 bits) is left-shifted 2 places inside its 4-bit field.
        let d2 = schema.dim(1).ordinal(&[0b1010, 0b11]);
        assert_eq!(m.expand_ordinal(1, d2), 0b1010_1100);
        assert_eq!(m.key_bits(), 16);
    }

    #[test]
    fn no_expansion_is_identity() {
        let schema = Schema::tpcds();
        let m = HilbertMapper::new(&schema, false);
        for d in 0..schema.dims() {
            let ord = schema.dim(d).ordinal_end() / 3;
            assert_eq!(m.expand_ordinal(d, ord), ord);
        }
        let total: u32 = schema.dimensions().iter().map(|d| d.total_bits()).sum();
        assert_eq!(m.key_bits(), total);
    }

    #[test]
    fn tpcds_expanded_width() {
        let schema = Schema::tpcds();
        let m = HilbertMapper::new(&schema, true);
        // Level maxima are 8/6/6 (Promotion, Minute, City): 3-level dims
        // widen to 20 bits, Household to 8, Promotion to 8, Time to 14.
        assert_eq!(m.key_bits(), 20 * 5 + 8 + 8 + 14);
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let schema = Schema::tpcds();
        let m = HilbertMapper::new(&schema, true);
        let a = Item::new(vec![1, 2, 3, 4, 5, 6, 7, 8], 1.0);
        let b = Item::new(vec![1, 2, 3, 4, 5, 6, 7, 9], 1.0);
        assert_eq!(m.key(&a), m.key(&a));
        assert_ne!(m.key(&a), m.key(&b));
    }

    #[test]
    fn batch_keys_match_one_shot_keys() {
        let schema = Schema::tpcds();
        for expand in [true, false] {
            let m = HilbertMapper::new(&schema, expand);
            let mut batch = m.batch();
            for i in 0..200u64 {
                let coords: Vec<u64> = (0..schema.dims())
                    .map(|d| (i * 7 + d as u64 * 13) % schema.dim(d).ordinal_end())
                    .collect();
                let item = Item::new(coords.clone(), i as f64);
                assert_eq!(batch.key(&item), m.key(&item));
                assert_eq!(batch.key_of_coords(&coords), m.key_of_coords(&coords));
            }
        }
    }

    /// Sibling subtrees at any level must map to disjoint Hilbert key ranges
    /// only in the sense of ordering locality; at minimum, equal prefixes at
    /// the top level with sorted keys should cluster. We check a weaker,
    /// exact property: expansion is monotone per level field.
    #[test]
    fn expansion_is_monotone_per_dimension() {
        let schema = Schema::tpcds();
        let m = HilbertMapper::new(&schema, true);
        for d in 0..schema.dims() {
            let end = schema.dim(d).ordinal_end().min(1 << 13);
            let mut last = None;
            for ord in 0..end {
                let e = m.expand_ordinal(d, ord);
                if let Some(prev) = last {
                    assert!(e > prev, "expansion must preserve ordinal order");
                }
                last = Some(e);
            }
        }
    }
}
