//! The key abstraction shared by the PDC-tree family.

use crate::item::Item;
use crate::mbr::Mbr;
use crate::query::QueryBox;
use crate::schema::Schema;

/// A spatial key describing the set of items below a tree node.
///
/// The paper's tree family is generic over two key types — Minimum Bounding
/// Rectangles ([`Mbr`], the R-tree key) and Minimum Describing Subsets
/// ([`crate::Mds`], the DC/PDC-tree key). The tree code only needs the
/// operations below; all volumes are *normalized* (fractions of the schema's
/// ordinal space) so they remain representable at 64 dimensions, where raw
/// volumes would overflow `f64` — the regime the paper's Figure 5 explores.
pub trait Key: Clone + Send + Sync + std::fmt::Debug + 'static {
    /// The empty key (covers nothing).
    fn empty(schema: &Schema) -> Self;

    /// The key describing exactly one item.
    fn from_item(schema: &Schema, item: &Item) -> Self {
        let mut k = Self::empty(schema);
        k.extend_item(schema, item);
        k
    }

    /// Grow to cover `item`. Returns `true` if the key changed.
    fn extend_item(&mut self, schema: &Schema, item: &Item) -> bool;

    /// Grow to cover everything `other` covers.
    fn extend_key(&mut self, schema: &Schema, other: &Self);

    /// Whether the key covers nothing.
    fn is_empty(&self) -> bool;

    /// Whether the described region intersects the query box.
    fn overlaps_query(&self, q: &QueryBox) -> bool;

    /// Whether the described region is entirely inside the query box
    /// (enables use of the node's cached aggregate).
    fn covered_by_query(&self, q: &QueryBox) -> bool;

    /// Whether `item` lies inside the described region.
    fn contains_item(&self, item: &Item) -> bool;

    /// Normalized volume of the described region, in `[0, 1]`.
    fn volume_frac(&self, schema: &Schema) -> f64;

    /// Normalized volume of the intersection with `other`, in `[0, 1]`.
    fn overlap_frac(&self, schema: &Schema, other: &Self) -> f64;

    /// Increase in normalized volume if `item` were added.
    fn enlargement_frac(&self, schema: &Schema, item: &Item) -> f64 {
        let mut grown = self.clone();
        grown.extend_item(schema, item);
        (grown.volume_frac(schema) - self.volume_frac(schema)).max(0.0)
    }

    /// A single bounding rectangle enclosing the region (identity for
    /// [`Mbr`]; the per-dimension hull for MDS keys). This is what shard
    /// descriptors carry in the global system image.
    fn to_mbr(&self, schema: &Schema) -> Mbr;
}

/// Total overlap length between two sorted lists of disjoint inclusive
/// ranges (helper shared by [`Mbr`] and [`crate::Mds`]).
pub(crate) fn range_lists_overlap(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j) = (0, 0);
    let mut total = 0u64;
    while i < a.len() && j < b.len() {
        let (alo, ahi) = a[i];
        let (blo, bhi) = b[j];
        let lo = alo.max(blo);
        let hi = ahi.min(bhi);
        if lo <= hi {
            total += hi - lo + 1;
        }
        if ahi < bhi {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_overlap_two_pointer() {
        let a = [(0u64, 4), (10, 14)];
        let b = [(3u64, 11)];
        // [3,4] and [10,11] overlap -> 2 + 2 = 4.
        assert_eq!(range_lists_overlap(&a, &b), 4);
        assert_eq!(range_lists_overlap(&b, &a), 4);
        assert_eq!(range_lists_overlap(&a, &[(5, 9)]), 0);
        assert_eq!(range_lists_overlap(&a, &a), 10);
        assert_eq!(range_lists_overlap(&[], &b), 0);
    }
}
