//! Per-principal accounting overhead guard, recorded to
//! `BENCH_account.json`.
//!
//! Accounting is designed so *untagged* traffic pays one branch: a request
//! without a principal never opens a bill, never reads the clock for cost
//! purposes, and never touches the accounting mutex. This bench proves
//! that property holds end to end: it drives an untagged mixed workload
//! (per-item inserts plus scatter queries) through one long-lived cluster
//! while toggling `Accounting::set_enabled` between segments, and compares
//! ops/sec. The trimmed-mean overhead of accounting-on versus off must
//! stay within tolerance (default 1%, `ACCOUNT_OVERHEAD_TOLERANCE` to
//! override); the process exits non-zero otherwise (`--check` is the same
//! gated run, matching the other bench binaries).
//!
//! Each round runs both configurations back to back in rotating order, so
//! slow throughput decay from tree growth lands on both equally and
//! cancels from the trimmed mean. The run-level stddev and two-sigma
//! noise floor are reported next to the overhead so a quiet machine is
//! never mistaken for a fast implementation.
//!
//! `--no-run` skips the timing runs and instead smoke-tests the
//! accounting pipeline on a tiny cluster: a tagged workload must produce
//! exact per-principal totals, a populated heavy-hitter sketch, and
//! lossless exporter round trips.

use std::time::Instant;

use volap::{ClientSession, Cluster, VolapConfig};
use volap_bench::{BenchEnv, GateNoise};
use volap_data::DataGen;
use volap_dims::{Item, QueryBox, Schema};
use volap_obs::export;

const ITEMS_PER_SEGMENT: usize = 6_000;
const QUERIES_PER_SEGMENT: usize = 60;
const ROUNDS: usize = 10; // even: each config sits in each slot equally
const TRIM: usize = 2;

/// One untagged mixed segment: ops/sec over inserts + full-space queries.
fn segment(client: &ClientSession, items: &[Item], query: &QueryBox) -> f64 {
    let t = Instant::now();
    let per_query = items.len() / QUERIES_PER_SEGMENT;
    for (i, item) in items.iter().enumerate() {
        client.insert(item).expect("insert");
        if i % per_query == 0 {
            client.query(query).expect("query");
        }
    }
    (items.len() + QUERIES_PER_SEGMENT) as f64 / t.elapsed().as_secs_f64()
}

fn trimmed_mean(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    let kept = &v[TRIM..v.len() - TRIM];
    kept.iter().sum::<f64>() / kept.len() as f64
}

fn smoke() {
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    let cluster = Cluster::start(cfg);
    let mut gen = DataGen::new(&schema, 23, 1.2);
    let tenant = cluster.client().with_principal("smoke-tenant");
    for item in gen.items(200) {
        tenant.insert(&item).expect("insert");
    }
    for _ in 0..10 {
        tenant.query(&QueryBox::all(&schema)).expect("query");
    }
    let snap = cluster.snapshot();
    cluster.shutdown();
    let acc = &snap.accounting;
    assert!(acc.enabled, "smoke: accounting disabled by default");
    let t = acc.principal("smoke-tenant").expect("smoke: tenant not accounted");
    assert_eq!(t.requests, 210, "smoke: exact request total wrong");
    assert!(t.cost.bytes > 0 && t.cost.wall_us > 0, "smoke: empty cost vector");
    let hops = acc.top_of("net_hops").expect("smoke: net_hops sketch missing");
    assert!(!hops.entries.is_empty(), "smoke: heavy-hitter sketch empty");
    let back = export::from_json(&export::to_json(&snap)).expect("smoke: JSON parse");
    assert_eq!(back.accounting, snap.accounting, "smoke: JSON round trip lost accounting");
    let rt = export::from_prometheus(&export::to_prometheus(&snap))
        .expect("smoke: prometheus parse");
    assert_eq!(rt, snap.metrics_only(), "smoke: prometheus round trip lost accounting");
    println!(
        "account smoke OK: {} request(s) charged, {} sketch entr(ies), exporters round-trip",
        t.requests,
        hops.entries.len()
    );
}

fn main() {
    let env = BenchEnv::setup("bench_account");
    if env.no_run {
        smoke();
        return;
    }
    let tolerance: f64 = std::env::var("ACCOUNT_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    let cluster = Cluster::start(cfg);
    let client = cluster.client(); // untagged: the hot path under test
    let accounting = cluster.accounting().clone();
    let query = QueryBox::all(&schema);
    let mut gen = DataGen::new(&schema, 29, 1.3);

    // Warm up threads, allocator, and the first tree levels untimed.
    for _ in 0..2 {
        segment(&client, &gen.items(ITEMS_PER_SEGMENT), &query);
    }

    // Accounting on (core armed; untagged requests still skip after one
    // branch) vs off (the same branch reads a disabled flag).
    const CONFIGS: [bool; 2] = [true, false];
    let mut thru = [Vec::new(), Vec::new()];
    for round in 0..ROUNDS {
        for slot in 0..2 {
            let which = (round + slot) % 2;
            accounting.set_enabled(CONFIGS[which]);
            thru[which].push(segment(&client, &gen.items(ITEMS_PER_SEGMENT), &query));
        }
        println!(
            "round {round:>2}: mixed on {:>7.0}/s  off {:>7.0}/s",
            thru[0][round], thru[1][round]
        );
    }
    accounting.set_enabled(true);
    cluster.shutdown();

    let noise = GateNoise::from_rounds(&thru[0], &thru[1]);
    let m = [trimmed_mean(thru[0].clone()), trimmed_mean(thru[1].clone())];
    let overhead = (m[1] - m[0]) / m[1];
    let ok = overhead <= tolerance;
    println!("mixed: on {:.0}/s  off {:.0}/s (trimmed means)", m[0], m[1]);
    println!(
        "accounting untagged overhead {:.2}% (tolerance {:.0}%) {}",
        overhead * 100.0,
        tolerance * 100.0,
        if ok { "OK" } else { "FAIL" }
    );
    noise.report(overhead);
    let json = format!(
        "{{\n  \"bench\": \"account_overhead\",\n  {},\n  \
         {},\n  \
         \"items_per_segment\": {ITEMS_PER_SEGMENT},\n  \
         \"queries_per_segment\": {QUERIES_PER_SEGMENT},\n  \"rounds\": {ROUNDS},\n  \
         \"mixed_per_s\": {{\"accounting_on\": {:.0}, \"accounting_off\": {:.0}}},\n  \
         \"untagged_overhead_frac\": {overhead:.4},\n  \
         {},\n  \
         \"tolerance_frac\": {tolerance},\n  \"within_tolerance\": {ok}\n}}\n",
        env.json_fields(),
        env.headline("untagged_overhead_frac", (overhead * 1e4).round() / 1e4, false),
        m[0],
        m[1],
        noise.json_fragment()
    );
    std::fs::write("BENCH_account.json", &json).expect("write BENCH_account.json");
    println!("wrote BENCH_account.json");
    if !ok {
        std::process::exit(1);
    }
}
