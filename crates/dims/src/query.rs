//! Aggregate query regions.

use crate::item::Item;
use crate::path::DimPath;
use crate::schema::Schema;

/// An aggregate query: one inclusive leaf-ordinal range per dimension.
///
/// VOLAP queries "specify values at various levels in all dimensions"
/// (paper §IV): naming a hierarchy prefix in a dimension selects that
/// prefix's whole subtree, i.e. a contiguous ordinal range; naming the ALL
/// root selects the full dimension. A query box is the conjunction of one
/// such range per dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBox {
    /// Inclusive `[lo, hi]` per dimension.
    pub ranges: Box<[(u64, u64)]>,
}

impl QueryBox {
    /// The query that covers the whole database.
    pub fn all(schema: &Schema) -> Self {
        let ranges = (0..schema.dims())
            .map(|d| (0, schema.dim(d).ordinal_end() - 1))
            .collect::<Vec<_>>();
        Self { ranges: ranges.into_boxed_slice() }
    }

    /// Build a query from one hierarchy path per dimension (in schema
    /// order). Root paths select everything in their dimension.
    ///
    /// # Panics
    ///
    /// Panics if the number of paths differs from the schema's dimensions or
    /// a path's `dim` is out of order.
    pub fn from_paths(schema: &Schema, paths: &[DimPath]) -> Self {
        assert_eq!(paths.len(), schema.dims(), "one path per dimension required");
        let ranges = paths
            .iter()
            .enumerate()
            .map(|(d, p)| {
                assert_eq!(p.dim, d, "paths must be in schema dimension order");
                p.range(schema)
            })
            .collect::<Vec<_>>();
        Self { ranges: ranges.into_boxed_slice() }
    }

    /// Build directly from ranges (used by tests and deserialization).
    pub fn from_ranges(ranges: Vec<(u64, u64)>) -> Self {
        for &(lo, hi) in &ranges {
            assert!(lo <= hi, "query range must be non-empty");
        }
        Self { ranges: ranges.into_boxed_slice() }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.ranges.len()
    }

    /// Whether `item` falls inside the query region.
    #[inline]
    pub fn contains_item(&self, item: &Item) -> bool {
        debug_assert_eq!(item.coords.len(), self.ranges.len());
        item.coords
            .iter()
            .zip(self.ranges.iter())
            .all(|(&c, &(lo, hi))| lo <= c && c <= hi)
    }

    /// Whether at least one dimension's range is narrower than its full
    /// ordinal domain. Unconstrained queries are answered from the root's
    /// cached aggregate; constrained-but-aligned ones from level rollups.
    pub fn constrains_any(&self, schema: &Schema) -> bool {
        self.ranges
            .iter()
            .enumerate()
            .any(|(d, &(lo, hi))| lo != 0 || hi != schema.dim(d).ordinal_end() - 1)
    }

    /// Whether every dimension's range is a whole number of level-`level`
    /// hierarchy cells — the subtree spans of paths cut at `level`, clamped
    /// to each dimension's depth. Such a query can be answered exactly from
    /// aggregates materialized per level-`level` cell.
    pub fn aligned_at_level(&self, schema: &Schema, level: usize) -> bool {
        debug_assert!(level >= 1);
        self.ranges.iter().enumerate().all(|(d, &(lo, hi))| {
            let dim = schema.dim(d);
            let rem = dim.remaining_bits(level.min(dim.depth()));
            let span_mask = (1u64 << rem) - 1;
            // `lo` starts a cell and `hi` ends one: both prefixes whole.
            lo & span_mask == 0 && hi.wrapping_add(1) & span_mask == 0
        })
    }

    /// Natural log of the fraction of the ordinal space this query covers
    /// (`0.0` = everything). Useful as a cheap *geometric* selectivity
    /// proxy; true data coverage is measured by the workload generator.
    pub fn log_selectivity(&self, schema: &Schema) -> f64 {
        self.ranges
            .iter()
            .enumerate()
            .map(|(d, &(lo, hi))| {
                let len = (hi - lo + 1) as f64;
                let dom = schema.dim(d).ordinal_end() as f64;
                (len / dom).ln()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_item() {
        let s = Schema::tpcds();
        let q = QueryBox::all(&s);
        let item = Item::from_paths(
            &s,
            &[
                vec![15, 31, 63],
                vec![63, 11, 30],
                vec![15, 15, 31],
                vec![15, 11, 30],
                vec![15, 31, 63],
                vec![19],
                vec![255],
                vec![23, 59],
            ],
            1.0,
        );
        assert!(q.contains_item(&item));
        assert_eq!(q.log_selectivity(&s), 0.0);
    }

    #[test]
    fn path_query_selects_subtree() {
        let s = Schema::tpcds();
        let mut paths: Vec<DimPath> = (0..8).map(DimPath::root).collect();
        paths[3] = DimPath::new(3, vec![9]); // Date.Year = 9
        let q = QueryBox::from_paths(&s, &paths);

        let inside = Item::from_paths(
            &s,
            &[
                vec![0, 0, 0],
                vec![0, 0, 0],
                vec![0, 0, 0],
                vec![9, 3, 4],
                vec![0, 0, 0],
                vec![0],
                vec![0],
                vec![0, 0],
            ],
            1.0,
        );
        let outside = Item::from_paths(
            &s,
            &[
                vec![0, 0, 0],
                vec![0, 0, 0],
                vec![0, 0, 0],
                vec![8, 3, 4],
                vec![0, 0, 0],
                vec![0],
                vec![0],
                vec![0, 0],
            ],
            1.0,
        );
        assert!(q.contains_item(&inside));
        assert!(!q.contains_item(&outside));
        assert!(q.log_selectivity(&s) < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_inverted_range() {
        QueryBox::from_ranges(vec![(5, 3)]);
    }

    #[test]
    fn alignment_detects_whole_cells() {
        // 3 dims, depth 2, fanout 8: 3 bits per level, level-1 cells span 8.
        let s = Schema::uniform(3, 2, 8);
        let full = QueryBox::all(&s);
        assert!(!full.constrains_any(&s));
        assert!(full.aligned_at_level(&s, 1));

        let cell = QueryBox::from_ranges(vec![(8, 15), (0, 63), (16, 31)]);
        assert!(cell.constrains_any(&s));
        assert!(cell.aligned_at_level(&s, 1), "whole level-1 cells on every dim");

        let point = QueryBox::from_ranges(vec![(9, 9), (0, 63), (0, 63)]);
        assert!(!point.aligned_at_level(&s, 1), "partial cell on dim 0");
        // At (clamped) leaf level every range is trivially aligned.
        assert!(point.aligned_at_level(&s, 2));
        assert!(point.aligned_at_level(&s, 99), "levels clamp to dimension depth");
    }
}
