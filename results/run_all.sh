#!/bin/sh
# Regenerate every paper figure (full scale). Outputs land in results/.
set -x
cd "$(dirname "$0")/.."
for b in fig4 fig5 fig6 fig7 fig8 fig9 fig10 bulk ablate; do
  ./target/release/$b > results/$b.txt 2>&1
done
