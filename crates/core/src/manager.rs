//! The manager: the background load-balancing planner (§III-E).
//!
//! The manager periodically reads shard statistics from the global image
//! and initiates two kinds of operations:
//!
//! * **splits** — any shard above the configured size threshold is split in
//!   place on its worker (the worker keeps serving through an insertion
//!   queue), and
//! * **migrations** — shards move from overloaded to underloaded workers
//!   until loads are within the slack band, which is how newly added
//!   (empty) workers are filled during horizontal scale-up (Figure 6).
//!
//! The manager is deliberately not on the insert/query path and can run
//! anywhere in the system.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use volap_net::{Endpoint, Network};
use volap_obs::{BalanceDecision, Counter, Histogram, Obs};

use crate::config::VolapConfig;
use crate::image::ImageStore;
use crate::proto::{Request, Response};

/// Cumulative counts of load-balancing operations (the right-hand axis of
/// Figure 6), backed by the deployment's metrics registry so they appear in
/// cluster snapshots alongside every other metric.
#[derive(Clone)]
pub struct BalanceStats {
    /// Completed shard splits (`volap_manager_splits_total`).
    pub splits: Counter,
    /// Completed shard migrations (`volap_manager_migrations_total`).
    pub migrations: Counter,
    /// Shard records removed because their worker's session expired
    /// (`volap_manager_orphans_removed_total`).
    pub orphans_removed: Counter,
    /// Wall time of each planning round (`volap_manager_round_seconds`).
    round_seconds: Histogram,
}

impl BalanceStats {
    /// Register (or re-attach to) the manager metrics in an observability
    /// core.
    pub fn new(obs: &Obs) -> Self {
        let reg = obs.registry();
        Self {
            splits: reg.counter("volap_manager_splits_total"),
            migrations: reg.counter("volap_manager_migrations_total"),
            orphans_removed: reg.counter("volap_manager_orphans_removed_total"),
            round_seconds: reg.histogram("volap_manager_round_seconds"),
        }
    }
}

/// Handle to a running manager.
pub struct ManagerHandle {
    /// Shared operation counters.
    pub stats: Arc<BalanceStats>,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ManagerHandle {
    /// Signal shutdown and join.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawn the manager loop.
pub fn spawn_manager(net: &Network, image: &ImageStore, cfg: &VolapConfig, name: &str) -> ManagerHandle {
    let endpoint = net.endpoint(name.to_string());
    let stats = Arc::new(BalanceStats::new(image.obs()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let thread = {
        let image = image.clone();
        let cfg = cfg.clone();
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                while crate::util::sleep_unless_stopped(cfg.manager_period, &stop) {
                    balance_round(&endpoint, &image, &cfg, &stats);
                }
            })
            .expect("spawn manager")
    };
    ManagerHandle { stats, shutdown, thread: Some(thread) }
}

/// One planning round: split oversized shards, then move shards from the
/// most to the least loaded workers. Public so tests and benches can drive
/// balancing synchronously.
pub fn balance_round(
    endpoint: &Endpoint,
    image: &ImageStore,
    cfg: &VolapConfig,
    stats: &BalanceStats,
) {
    let _timer = stats.round_seconds.start();
    // Expire dead sessions so the live-worker view is current.
    image.coord().reap_expired();
    let shards = image.shards();
    let workers = image.workers();
    if workers.is_empty() {
        return;
    }
    let audit = image.obs().audit();
    // One heat snapshot per round: the EWMA rates become decision inputs so
    // the audit trail explains *why* a shard was picked, not just that it
    // was over threshold.
    let heat: HashMap<u64, (f64, f64)> = image
        .obs()
        .heat()
        .snapshot()
        .into_iter()
        .map(|e| (e.shard, (e.insert_rate, e.query_rate)))
        .collect();

    // Phase 0: drop records of shards stranded on dead workers (VOLAP has
    // no replication; the record removal restores routing for the rest).
    for rec in &shards {
        if !workers.iter().any(|w| w == &rec.worker) {
            let t0 = Instant::now();
            if image.remove_shard(rec.id).is_ok() {
                stats.orphans_removed.inc();
                image
                    .obs()
                    .events()
                    .record("orphan_reap", format!("shard={} worker={}", rec.id, rec.worker));
                audit.record(BalanceDecision {
                    action: "orphan_reap".into(),
                    shard: rec.id,
                    src: rec.worker.clone(),
                    inputs: vec![
                        ("reason".into(), "worker session expired".into()),
                        ("len".into(), rec.len.to_string()),
                    ],
                    outcome: "ok".into(),
                    duration_us: elapsed_us(t0),
                    ..Default::default()
                });
            }
        }
    }
    let shards = image.shards();

    // Phase 1: splits.
    for rec in &shards {
        if rec.len > cfg.max_shard_items {
            let ids = image.alloc_ids(2);
            let req = Request::SplitShard {
                shard: rec.id,
                left_id: ids.start,
                right_id: ids.start + 1,
            };
            let t0 = Instant::now();
            let ok = endpoint
                .request(&rec.worker, req.encode(), cfg.request_timeout)
                .ok()
                .and_then(|bytes| Response::decode(&cfg.schema, &bytes).ok())
                .is_some_and(|r| matches!(r, Response::SplitDone { .. }));
            if ok {
                stats.splits.inc();
                image.obs().events().record(
                    "manager_split",
                    format!("shard={} worker={} len={}", rec.id, rec.worker, rec.len),
                );
            }
            let mut inputs = vec![
                ("len".into(), rec.len.to_string()),
                ("max_shard_items".into(), cfg.max_shard_items.to_string()),
            ];
            push_heat_inputs(&mut inputs, &heat, rec.id);
            audit.record(BalanceDecision {
                action: "split".into(),
                shard: rec.id,
                src: rec.worker.clone(),
                inputs,
                result_shards: vec![ids.start, ids.start + 1],
                outcome: if ok { "ok".into() } else { "split_failed".into() },
                duration_us: elapsed_us(t0),
                ..Default::default()
            });
        }
    }

    // Phase 2: migrations. Work from a fresh snapshot (splits changed it).
    let shards = image.shards();
    let mut load: HashMap<&str, u64> = workers.iter().map(|w| (w.as_str(), 0)).collect();
    let mut by_worker: HashMap<&str, Vec<(u64, u64)>> = HashMap::new(); // worker -> (shard, len)
    for rec in &shards {
        if let Some(l) = load.get_mut(rec.worker.as_str()) {
            *l += rec.len;
            by_worker.entry(rec.worker.as_str()).or_default().push((rec.id, rec.len));
        }
    }
    let total: u64 = load.values().sum();
    if total == 0 {
        return;
    }
    let mean = total as f64 / workers.len() as f64;
    let hi = mean * (1.0 + cfg.migrate_slack);
    let lo = mean * (1.0 - cfg.migrate_slack);

    for _ in 0..cfg.max_moves_per_round {
        let Some((&src, &src_load)) = load.iter().max_by_key(|(_, &l)| l) else { break };
        let Some((&dst, &dst_load)) = load.iter().min_by_key(|(_, &l)| l) else { break };
        if src == dst || (src_load as f64) <= hi || (dst_load as f64) >= lo {
            break;
        }
        // Largest shard that fits in half the gap (avoids ping-ponging).
        let gap = src_load - dst_load;
        let candidates = by_worker.get_mut(src).map(std::mem::take).unwrap_or_default();
        let pick = candidates
            .iter()
            .filter(|&&(_, len)| len > 0 && len <= gap / 2 + 1)
            .max_by_key(|&&(_, len)| len)
            .copied();
        let Some((shard, len)) = pick else {
            by_worker.insert(src, candidates);
            break;
        };
        let req = Request::Migrate { shard, dest: dst.to_string() };
        let t0 = Instant::now();
        let ok = endpoint
            .request(src, req.encode(), cfg.request_timeout)
            .ok()
            .and_then(|bytes| Response::decode(&cfg.schema, &bytes).ok())
            .is_some_and(|r| matches!(r, Response::Ack));
        let mut rest: Vec<(u64, u64)> = candidates.into_iter().filter(|&(s, _)| s != shard).collect();
        if ok {
            stats.migrations.inc();
            image.obs().events().record(
                "manager_migrate",
                format!("shard={shard} src={src} dest={dst} len={len}"),
            );
            *load.get_mut(src).unwrap() -= len;
            *load.get_mut(dst).unwrap() += len;
            by_worker.entry(dst).or_default().push((shard, len));
        } else {
            rest.push((shard, len));
        }
        by_worker.insert(src, rest);
        let mut inputs = vec![
            ("src_load".into(), src_load.to_string()),
            ("dst_load".into(), dst_load.to_string()),
            ("mean".into(), format!("{mean:.1}")),
            ("hi".into(), format!("{hi:.1}")),
            ("lo".into(), format!("{lo:.1}")),
            ("gap".into(), gap.to_string()),
            ("len".into(), len.to_string()),
        ];
        push_heat_inputs(&mut inputs, &heat, shard);
        audit.record(BalanceDecision {
            action: "migrate".into(),
            shard,
            src: src.to_string(),
            dest: dst.to_string(),
            inputs,
            result_shards: vec![shard],
            outcome: if ok { "ok".into() } else { "migrate_failed".into() },
            duration_us: elapsed_us(t0),
            ..Default::default()
        });
    }
}

fn elapsed_us(t0: Instant) -> u64 {
    t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Append a shard's EWMA rates to a decision's inputs, when the heat map
/// has an entry for it (it may not: heat disabled, or the shard is younger
/// than one stats period).
fn push_heat_inputs(inputs: &mut Vec<(String, String)>, heat: &HashMap<u64, (f64, f64)>, shard: u64) {
    if let Some(&(ir, qr)) = heat.get(&shard) {
        inputs.push(("insert_rate".into(), format!("{ir:.3}")));
        inputs.push(("query_rate".into(), format!("{qr:.3}")));
    }
}
