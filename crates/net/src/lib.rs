//! An in-memory asynchronous message fabric: the ZeroMQ substitute.
//!
//! VOLAP's servers, workers and manager communicate over ZeroMQ (§III-B):
//! asynchronous messages, request/reply with correlation, and incoming
//! requests load-balanced across the threads of a process. This crate
//! reproduces those semantics inside one process so the distributed system's
//! code runs unchanged on a laptop:
//!
//! * [`Network`] — a registry of named endpoints (one per simulated
//!   process), with an optional injected one-way delivery latency to mimic a
//!   real wire.
//! * [`Endpoint`] — a process's mailbox. `send` is fire-and-forget;
//!   [`Endpoint::request`] blocks for a correlated reply with a timeout;
//!   [`Endpoint::recv`] pulls the next incoming request. The receive queue
//!   is MPMC: any number of service threads can `recv` from clones of the
//!   same endpoint, giving ZeroMQ's availability-based thread load
//!   balancing for free.
//!
//! Replies are demultiplexed by correlation ID straight into the waiting
//! requester, never through the request queue — exactly the two-socket
//! pattern the paper describes per thread.
//!
//! **Causal tracing** rides on the fabric: an [`Envelope`] carries an
//! optional [`TraceCtx`] next to its correlation ID, so a sampled request's
//! identity survives every hop. [`Endpoint::request_traced`] /
//! [`Endpoint::request_many_traced`] wrap each hop in a `net_hop` span
//! (once a [`Tracer`] is attached via [`Network::attach_tracer`]), and
//! [`Incoming`] exposes the propagated context plus the measured time the
//! envelope spent in the receive queue — the `worker_queue` stage of the
//! paper's latency breakdown.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use volap_obs::lock::{LockClass, ObsMutex, ObsRwLock};
use volap_obs::{Counter, Histogram, Registry, SpanGuard, TraceCtx, Tracer};

/// The fabric's slice of the global lock hierarchy (DESIGN.md §15): routing
/// reads the endpoint registry, then may hold the delay-queue sender while
/// delivering, and delivery of a reply takes the requester's pending map —
/// so endpoints < delay < pending.
static ENDPOINTS_CLASS: LockClass = LockClass::new("net.endpoints", 60);
static DELAY_CLASS: LockClass = LockClass::new("net.delay", 61);
static PENDING_CLASS: LockClass = LockClass::new("net.pending", 62);

/// Fabric-level observability handles, attached once per network (see
/// [`Network::attach_obs`]). Absent by default so the fabric stays
/// dependency-quiet for unit tests and standalone use.
struct NetObs {
    /// Envelopes routed (requests, replies, and fire-and-forget sends).
    messages: Counter,
    /// Payload bytes routed.
    bytes: Counter,
    /// Requests issued via `request`/`request_many`.
    requests: Counter,
    /// Requests that timed out waiting for their reply.
    timeouts: Counter,
    /// Replies that arrived after their requester had already given up
    /// (timed out and removed its pending entry). Kept distinct from
    /// `timeouts`: a timeout with no late reply means the peer never
    /// answered; a timeout *with* one means it answered too slowly.
    late_replies: Counter,
    /// Request round-trip latency.
    request_seconds: Histogram,
}

/// Errors surfaced by the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination endpoint is not registered.
    UnknownEndpoint(String),
    /// No reply arrived within the timeout.
    Timeout,
    /// The endpoint (or network) was shut down.
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownEndpoint(n) => write!(f, "unknown endpoint: {n}"),
            NetError::Timeout => f.write_str("request timed out"),
            NetError::Closed => f.write_str("endpoint closed"),
        }
    }
}

impl std::error::Error for NetError {}

/// A routed message.
#[derive(Debug, Clone)]
struct Envelope {
    from: String,
    correlation: u64,
    /// `true` when this is a reply to an outstanding request.
    is_reply: bool,
    /// Propagated trace context (sampled requests only).
    trace: Option<TraceCtx>,
    /// Propagated accounting principal (0 = untagged), riding alongside
    /// the trace context so cost attribution survives every hop.
    principal: u32,
    /// Stamped at delivery into the destination queue, so receive-side
    /// queue-wait measurements exclude injected wire latency.
    queued_at: Option<Instant>,
    payload: Vec<u8>,
}

struct EndpointCore {
    name: String,
    queue_tx: Sender<Envelope>,
    queue_rx: Receiver<Envelope>,
    pending: ObsMutex<HashMap<u64, Sender<Envelope>>>,
    next_corr: AtomicU64,
}

impl EndpointCore {
    fn deliver(&self, mut env: Envelope, obs: Option<&NetObs>) {
        if env.is_reply {
            // Route straight to the requester. If it already gave up
            // (timeout removed the pending entry), the reply is *late*:
            // count it rather than losing the signal silently.
            match self.pending.lock().remove(&env.correlation) {
                Some(tx) => {
                    let _ = tx.send(env);
                }
                None => {
                    if let Some(obs) = obs {
                        obs.late_replies.inc();
                    }
                }
            }
        } else {
            env.queued_at = Some(Instant::now());
            let _ = self.queue_tx.send(env);
        }
    }
}

struct NetworkInner {
    endpoints: ObsRwLock<HashMap<String, Arc<EndpointCore>>>,
    latency: Option<Duration>,
    delay_tx: ObsMutex<Option<Sender<(Instant, String, Envelope)>>>,
    obs: OnceLock<NetObs>,
    tracer: OnceLock<Tracer>,
}

/// The fabric: a registry of endpoints plus the delivery path.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// A fabric with instantaneous delivery.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(NetworkInner {
                endpoints: ObsRwLock::new(&ENDPOINTS_CLASS, HashMap::new()),
                latency: None,
                delay_tx: ObsMutex::new(&DELAY_CLASS, None),
                obs: OnceLock::new(),
                tracer: OnceLock::new(),
            }),
        }
    }

    /// A fabric that delays every delivery by `latency` (one way), using a
    /// background timer thread — a crude but effective model of a real
    /// datacenter wire for staleness experiments.
    pub fn with_latency(latency: Duration) -> Self {
        let net = Self {
            inner: Arc::new(NetworkInner {
                endpoints: ObsRwLock::new(&ENDPOINTS_CLASS, HashMap::new()),
                latency: Some(latency),
                delay_tx: ObsMutex::new(&DELAY_CLASS, None),
                obs: OnceLock::new(),
                tracer: OnceLock::new(),
            }),
        };
        let (tx, rx) = unbounded::<(Instant, String, Envelope)>();
        *net.inner.delay_tx.lock() = Some(tx);
        let weak = Arc::downgrade(&net.inner);
        std::thread::Builder::new()
            .name("volap-net-delay".into())
            .spawn(move || {
                // FIFO + fixed delay means arrival order is send order, so a
                // simple queue suffices (no heap needed).
                while let Ok((due, to, env)) = rx.recv() {
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let Some(inner) = weak.upgrade() else { break };
                    let target = inner.endpoints.read().get(&to).cloned();
                    if let Some(core) = target {
                        core.deliver(env, inner.obs.get());
                    }
                }
            })
            .expect("spawn delay thread");
        net
    }

    /// Register a new endpoint. Panics if the name is taken.
    pub fn endpoint(&self, name: impl Into<String>) -> Endpoint {
        let name = name.into();
        let (queue_tx, queue_rx) = unbounded();
        let core = Arc::new(EndpointCore {
            name: name.clone(),
            queue_tx,
            queue_rx,
            pending: ObsMutex::new(&PENDING_CLASS, HashMap::new()),
            next_corr: AtomicU64::new(1),
        });
        let prev = self.inner.endpoints.write().insert(name.clone(), Arc::clone(&core));
        assert!(prev.is_none(), "endpoint name {name:?} already registered");
        Endpoint { net: self.clone(), core }
    }

    /// Attach fabric metrics to a registry (idempotent; the first call
    /// wins). Until attached, the fabric records nothing.
    pub fn attach_obs(&self, registry: &Registry) {
        let _ = self.inner.obs.set(NetObs {
            messages: registry.counter("volap_net_messages_total"),
            bytes: registry.counter("volap_net_bytes_total"),
            requests: registry.counter("volap_net_requests_total"),
            timeouts: registry.counter("volap_net_timeouts_total"),
            late_replies: registry.counter("volap_net_late_replies_total"),
            request_seconds: registry.histogram("volap_net_request_seconds"),
        });
    }

    /// Attach a causal tracer (idempotent; the first call wins). Until
    /// attached, `*_traced` calls propagate contexts but record no spans.
    pub fn attach_tracer(&self, tracer: &Tracer) {
        let _ = self.inner.tracer.set(tracer.clone());
    }

    fn obs(&self) -> Option<&NetObs> {
        self.inner.obs.get()
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.inner.tracer.get()
    }

    /// Remove an endpoint from the registry (messages to it start failing).
    pub fn unregister(&self, name: &str) {
        self.inner.endpoints.write().remove(name);
    }

    /// Registered endpoint names.
    pub fn names(&self) -> Vec<String> {
        self.inner.endpoints.read().keys().cloned().collect()
    }

    fn route(&self, to: &str, env: Envelope) -> Result<(), NetError> {
        if let Some(obs) = self.obs() {
            obs.messages.inc();
            obs.bytes.add(env.payload.len() as u64);
        }
        let target = self
            .inner
            .endpoints
            .read()
            .get(to)
            .cloned()
            .ok_or_else(|| NetError::UnknownEndpoint(to.to_string()))?;
        match (self.inner.latency, &*self.inner.delay_tx.lock()) {
            (Some(lat), Some(tx)) => {
                tx.send((Instant::now() + lat, to.to_string(), env)).map_err(|_| NetError::Closed)
            }
            _ => {
                target.deliver(env, self.obs());
                Ok(())
            }
        }
    }
}

/// An incoming request, with everything needed to reply.
pub struct Incoming {
    /// Sender endpoint name.
    pub from: String,
    /// Correlation ID (echoed in the reply).
    pub correlation: u64,
    /// Propagated trace context, when the sender's request was sampled.
    pub trace: Option<TraceCtx>,
    /// Propagated accounting principal (0 = untagged).
    pub principal: u32,
    /// Time this envelope spent in the receive queue before `recv` picked
    /// it up (excludes injected wire latency) — the `worker_queue` stage.
    pub queued: Duration,
    /// Message body.
    pub payload: Vec<u8>,
    net: Network,
    to_name: String,
}

impl Incoming {
    fn from_env(env: Envelope, net: Network, to_name: String) -> Self {
        Incoming {
            from: env.from,
            correlation: env.correlation,
            trace: env.trace,
            principal: env.principal,
            queued: env.queued_at.map(|t| t.elapsed()).unwrap_or_default(),
            payload: env.payload,
            net,
            to_name,
        }
    }

    /// Send a reply back to the requester.
    pub fn reply(&self, payload: Vec<u8>) -> Result<(), NetError> {
        self.net.route(
            &self.from,
            Envelope {
                from: self.to_name.clone(),
                correlation: self.correlation,
                is_reply: true,
                trace: None,
                principal: 0,
                queued_at: None,
                payload,
            },
        )
    }
}

/// A named mailbox on the fabric. Cloneable: clones share the queue, so a
/// pool of service threads drains one endpoint cooperatively.
#[derive(Clone)]
pub struct Endpoint {
    net: Network,
    core: Arc<EndpointCore>,
}

impl Endpoint {
    /// This endpoint's name.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// The fabric this endpoint is attached to.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Fire-and-forget send (correlation 0).
    pub fn send(&self, to: &str, payload: Vec<u8>) -> Result<(), NetError> {
        self.send_traced(to, payload, None)
    }

    /// Fire-and-forget send carrying a trace context (used to keep
    /// causality across one-way hops, e.g. shard handoff notifications).
    pub fn send_traced(
        &self,
        to: &str,
        payload: Vec<u8>,
        trace: Option<TraceCtx>,
    ) -> Result<(), NetError> {
        self.net.route(
            to,
            Envelope {
                from: self.core.name.clone(),
                correlation: 0,
                is_reply: false,
                trace,
                principal: 0,
                queued_at: None,
                payload,
            },
        )
    }

    /// Send a request and block for the correlated reply.
    pub fn request(&self, to: &str, payload: Vec<u8>, timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.request_tagged(to, payload, timeout, None, 0)
    }

    /// [`Endpoint::request`] under a trace: when `parent` is set and a
    /// tracer is attached, the hop gets a child context (propagated in the
    /// envelope) and records a `net_hop` span covering the round trip.
    pub fn request_traced(
        &self,
        to: &str,
        payload: Vec<u8>,
        timeout: Duration,
        parent: Option<&TraceCtx>,
    ) -> Result<Vec<u8>, NetError> {
        self.request_tagged(to, payload, timeout, parent, 0)
    }

    /// [`Endpoint::request_traced`] carrying an accounting principal: the
    /// tag rides the envelope next to the trace context (and lands on the
    /// hop span, so slow traces show who the hop was for).
    pub fn request_tagged(
        &self,
        to: &str,
        payload: Vec<u8>,
        timeout: Duration,
        parent: Option<&TraceCtx>,
        principal: u32,
    ) -> Result<Vec<u8>, NetError> {
        let _timer = self.net.obs().map(|o| {
            o.requests.inc();
            o.request_seconds.start()
        });
        let (hop_ctx, mut hop_span) = self.hop_span(parent, to);
        if principal != 0 {
            if let Some(span) = hop_span.as_mut() {
                span.annotate("principal", principal.to_string());
            }
        }
        let corr = self.core.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.core.pending.lock().insert(corr, tx);
        let sent = self.net.route(
            to,
            Envelope {
                from: self.core.name.clone(),
                correlation: corr,
                is_reply: false,
                trace: hop_ctx,
                principal,
                queued_at: None,
                payload,
            },
        );
        if let Err(e) = sent {
            self.core.pending.lock().remove(&corr);
            if let Some(span) = hop_span.as_mut() {
                span.annotate("error", e.to_string());
            }
            return Err(e);
        }
        match rx.recv_timeout(timeout) {
            Ok(env) => Ok(env.payload),
            Err(_) => {
                self.core.pending.lock().remove(&corr);
                if let Some(obs) = self.net.obs() {
                    obs.timeouts.inc();
                }
                if let Some(span) = hop_span.as_mut() {
                    span.annotate("error", "timeout");
                }
                Err(NetError::Timeout)
            }
        }
    }

    /// Child context + `net_hop` span for one traced hop, when both a
    /// parent context and a tracer are present.
    fn hop_span(
        &self,
        parent: Option<&TraceCtx>,
        dest: &str,
    ) -> (Option<TraceCtx>, Option<SpanGuard>) {
        match (parent, self.net.tracer()) {
            (Some(parent), Some(tracer)) => {
                let ctx = tracer.child(parent);
                let mut span = tracer.span(&ctx, "net_hop");
                span.annotate("dest", dest);
                (Some(ctx), Some(span))
            }
            (parent, _) => (parent.copied(), None),
        }
    }

    /// Issue several requests concurrently and block until every reply has
    /// arrived (or the shared deadline passes). Returns one result per
    /// request, in order. This is the scatter/gather primitive servers use
    /// to query many workers in one round trip without spawning threads.
    pub fn request_many(
        &self,
        requests: &[(String, Vec<u8>)],
        timeout: Duration,
    ) -> Vec<Result<Vec<u8>, NetError>> {
        self.request_many_traced(requests, timeout, None)
    }

    /// [`Endpoint::request_many`] under a trace: each fan-out leg gets its
    /// own child context and `net_hop` span, closed as its reply arrives
    /// (stragglers close at the deadline with an `error` annotation), so an
    /// assembled trace shows exactly which worker a scatter waited on.
    pub fn request_many_traced(
        &self,
        requests: &[(String, Vec<u8>)],
        timeout: Duration,
        parent: Option<&TraceCtx>,
    ) -> Vec<Result<Vec<u8>, NetError>> {
        self.request_many_tagged(requests, timeout, parent, 0)
    }

    /// [`Endpoint::request_many_traced`] carrying an accounting principal on
    /// every fan-out leg (and annotating each leg's hop span), so scatter
    /// cost lands on the tenant that caused it.
    pub fn request_many_tagged(
        &self,
        requests: &[(String, Vec<u8>)],
        timeout: Duration,
        parent: Option<&TraceCtx>,
        principal: u32,
    ) -> Vec<Result<Vec<u8>, NetError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let n = requests.len();
        let _timer = self.net.obs().map(|o| {
            o.requests.add(n as u64);
            o.request_seconds.start()
        });
        let (tx, rx) = bounded(n);
        let mut corr_to_idx = HashMap::with_capacity(n);
        let mut results: Vec<Result<Vec<u8>, NetError>> =
            (0..n).map(|_| Err(NetError::Timeout)).collect();
        let mut hop_spans: Vec<Option<SpanGuard>> = (0..n).map(|_| None).collect();
        let mut outstanding = 0usize;
        // Reserve a contiguous correlation block and register every entry
        // under a single pending-lock acquisition — one lock round per
        // batch instead of one per request, so a wide scatter doesn't
        // serialize against reply demultiplexing.
        let base = self.core.next_corr.fetch_add(n as u64, Ordering::Relaxed);
        {
            let mut pending = self.core.pending.lock();
            for off in 0..n as u64 {
                pending.insert(base + off, tx.clone());
            }
        }
        for (i, (to, payload)) in requests.iter().enumerate() {
            let corr = base + i as u64;
            let (hop_ctx, mut hop_span) = self.hop_span(parent, to);
            if principal != 0 {
                if let Some(span) = hop_span.as_mut() {
                    span.annotate("principal", principal.to_string());
                }
            }
            hop_spans[i] = hop_span;
            let sent = self.net.route(
                to,
                Envelope {
                    from: self.core.name.clone(),
                    correlation: corr,
                    is_reply: false,
                    trace: hop_ctx,
                    principal,
                    queued_at: None,
                    payload: payload.clone(),
                },
            );
            match sent {
                Ok(()) => {
                    corr_to_idx.insert(corr, i);
                    outstanding += 1;
                }
                Err(e) => {
                    self.core.pending.lock().remove(&corr);
                    if let Some(span) = hop_spans[i].as_mut() {
                        span.annotate("error", e.to_string());
                    }
                    hop_spans[i] = None; // record the failed hop now
                    results[i] = Err(e);
                }
            }
        }
        let deadline = Instant::now() + timeout;
        while outstanding > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(env) => {
                    if let Some(&i) = corr_to_idx.get(&env.correlation) {
                        results[i] = Ok(env.payload);
                        hop_spans[i] = None; // close this leg's span
                        outstanding -= 1;
                    }
                }
                Err(_) => break,
            }
        }
        // Forget any stragglers.
        if outstanding > 0 {
            if let Some(obs) = self.net.obs() {
                obs.timeouts.add(outstanding as u64);
            }
            let mut pending = self.core.pending.lock();
            for &corr in corr_to_idx.keys() {
                pending.remove(&corr);
            }
            for (i, span) in hop_spans.iter_mut().enumerate() {
                if let Some(span) = span.as_mut() {
                    if results[i].is_err() {
                        span.annotate("error", "timeout");
                    }
                }
            }
        }
        results
    }

    /// Number of correlations still registered awaiting replies. Exposed so
    /// tests (and leak checks) can assert the pending map drains after
    /// timeouts instead of accumulating dead entries.
    pub fn pending_len(&self) -> usize {
        self.core.pending.lock().len()
    }

    /// Block for the next incoming request (not replies), up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Result<Incoming, NetError> {
        match self.core.queue_rx.recv_timeout(timeout) {
            Ok(env) => Ok(Incoming::from_env(env, self.net.clone(), self.core.name.clone())),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Non-blocking variant of [`Endpoint::recv`].
    pub fn try_recv(&self) -> Option<Incoming> {
        self.core
            .queue_rx
            .try_recv()
            .ok()
            .map(|env| Incoming::from_env(env, self.net.clone(), self.core.name.clone()))
    }

    /// Number of queued (unconsumed) requests.
    pub fn backlog(&self) -> usize {
        self.core.queue_rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_and_recv() {
        let net = Network::new();
        let a = net.endpoint("a");
        let b = net.endpoint("b");
        a.send("b", b"hello".to_vec()).unwrap();
        let msg = b.recv(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.payload, b"hello");
        assert_eq!(msg.from, "a");
    }

    #[test]
    fn unknown_endpoint_errors() {
        let net = Network::new();
        let a = net.endpoint("a");
        assert_eq!(
            a.send("nope", vec![]),
            Err(NetError::UnknownEndpoint("nope".into()))
        );
    }

    #[test]
    fn request_reply_roundtrip() {
        let net = Network::new();
        let client = net.endpoint("client");
        let server = net.endpoint("server");
        let h = thread::spawn(move || {
            let req = server.recv(Duration::from_secs(2)).unwrap();
            let mut resp = req.payload.clone();
            resp.reverse();
            req.reply(resp).unwrap();
        });
        let reply = client
            .request("server", vec![1, 2, 3], Duration::from_secs(2))
            .unwrap();
        assert_eq!(reply, vec![3, 2, 1]);
        h.join().unwrap();
    }

    #[test]
    fn replies_do_not_enter_request_queue() {
        let net = Network::new();
        let client = net.endpoint("client");
        let server = net.endpoint("server");
        let h = thread::spawn(move || {
            let req = server.recv(Duration::from_secs(2)).unwrap();
            req.reply(b"pong".to_vec()).unwrap();
        });
        client.request("server", b"ping".to_vec(), Duration::from_secs(2)).unwrap();
        h.join().unwrap();
        assert!(client.try_recv().is_none(), "reply must not appear as a request");
    }

    #[test]
    fn request_times_out_without_server_thread() {
        let net = Network::new();
        let client = net.endpoint("client");
        let _server = net.endpoint("server"); // never replies
        let err = client
            .request("server", vec![], Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn principal_tag_propagates_to_the_receiver() {
        let net = Network::new();
        let client = net.endpoint("client");
        let server = net.endpoint("server");
        let handle = thread::spawn(move || {
            let tagged = server.recv(Duration::from_secs(2)).unwrap();
            let principal = tagged.principal;
            tagged.reply(vec![]).unwrap();
            let untagged = server.recv(Duration::from_secs(2)).unwrap();
            let none = untagged.principal;
            untagged.reply(vec![]).unwrap();
            (principal, none)
        });
        client
            .request_tagged("server", vec![1], Duration::from_secs(2), None, 7)
            .unwrap();
        client.request("server", vec![2], Duration::from_secs(2)).unwrap();
        let (principal, none) = handle.join().unwrap();
        assert_eq!(principal, 7, "tag must ride the envelope to the handler");
        assert_eq!(none, 0, "untagged requests arrive with principal 0");
    }

    #[test]
    fn mpmc_receive_load_balances() {
        let net = Network::new();
        let client = net.endpoint("client");
        let server = net.endpoint("server");
        for i in 0..100u8 {
            client.send("server", vec![i]).unwrap();
        }
        let counts: Vec<usize> = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let ep = server.clone();
                    s.spawn(move || {
                        let mut n = 0;
                        while ep.recv(Duration::from_millis(100)).is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 100, "every message consumed exactly once");
    }

    #[test]
    fn latency_delays_delivery() {
        let net = Network::with_latency(Duration::from_millis(60));
        let a = net.endpoint("a");
        let b = net.endpoint("b");
        let start = Instant::now();
        a.send("b", vec![9]).unwrap();
        assert!(b.try_recv().is_none(), "must not arrive instantly");
        let msg = b.recv(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.payload, vec![9]);
        assert!(start.elapsed() >= Duration::from_millis(55));
    }

    #[test]
    fn request_many_gathers_in_order() {
        let net = Network::new();
        let client = net.endpoint("client");
        let mut handles = Vec::new();
        for i in 0..4 {
            let server = net.endpoint(format!("s{i}"));
            handles.push(thread::spawn(move || {
                let req = server.recv(Duration::from_secs(2)).unwrap();
                let mut resp = req.payload.clone();
                resp.push(0xFF);
                req.reply(resp).unwrap();
            }));
        }
        let reqs: Vec<(String, Vec<u8>)> =
            (0..4).map(|i| (format!("s{i}"), vec![i as u8])).collect();
        let replies = client.request_many(&reqs, Duration::from_secs(2));
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &vec![i as u8, 0xFF], "reply order preserved");
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn request_many_reports_partial_failures() {
        let net = Network::new();
        let client = net.endpoint("client");
        let server = net.endpoint("alive");
        let _silent = net.endpoint("silent");
        let h = thread::spawn(move || {
            let req = server.recv(Duration::from_secs(2)).unwrap();
            req.reply(b"ok".to_vec()).unwrap();
        });
        let reqs = vec![
            ("alive".to_string(), vec![1]),
            ("missing".to_string(), vec![2]),
            ("silent".to_string(), vec![3]),
        ];
        let replies = client.request_many(&reqs, Duration::from_millis(200));
        assert_eq!(replies[0].as_ref().unwrap(), b"ok");
        assert!(matches!(replies[1], Err(NetError::UnknownEndpoint(_))));
        assert_eq!(replies[2], Err(NetError::Timeout));
        h.join().unwrap();
    }

    #[test]
    fn request_many_empty_is_noop() {
        let net = Network::new();
        let client = net.endpoint("client");
        assert!(client.request_many(&[], Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn timeout_removes_pending_entry_and_late_reply_is_counted() {
        let net = Network::new();
        let reg = Registry::new(true);
        net.attach_obs(&reg);
        let client = net.endpoint("client");
        let server = net.endpoint("server");
        // Regression: a timed-out request must not leak its correlation.
        let err = client.request("server", b"slow".to_vec(), Duration::from_millis(30)).unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert_eq!(client.pending_len(), 0, "timeout must remove the pending entry");
        // The server answers *after* the client gave up: the late reply is
        // counted, not silently dropped, and must not resurrect the entry.
        let req = server.recv(Duration::from_secs(1)).unwrap();
        req.reply(b"too late".to_vec()).unwrap();
        assert_eq!(reg.counter("volap_net_late_replies_total").get(), 1);
        assert_eq!(client.pending_len(), 0);
        assert!(client.try_recv().is_none(), "late reply must not enter the request queue");
        // A fresh request still works (correlation space is unpoisoned).
        let h = thread::spawn(move || {
            let req = server.recv(Duration::from_secs(2)).unwrap();
            req.reply(b"ok".to_vec()).unwrap();
        });
        assert_eq!(client.request("server", vec![], Duration::from_secs(2)).unwrap(), b"ok");
        h.join().unwrap();
    }

    #[test]
    fn request_many_timeout_drains_pending_and_counts_late_replies() {
        let net = Network::new();
        let reg = Registry::new(true);
        net.attach_obs(&reg);
        let client = net.endpoint("client");
        let fast = net.endpoint("fast");
        let slow = net.endpoint("slow");
        let h = thread::spawn(move || {
            let req = fast.recv(Duration::from_secs(2)).unwrap();
            req.reply(b"ok".to_vec()).unwrap();
        });
        let reqs = vec![
            ("fast".to_string(), vec![1]),
            ("slow".to_string(), vec![2]),
            ("missing".to_string(), vec![3]),
        ];
        let replies = client.request_many(&reqs, Duration::from_millis(100));
        h.join().unwrap();
        assert_eq!(replies[0].as_ref().unwrap(), b"ok");
        assert_eq!(replies[1], Err(NetError::Timeout));
        assert!(matches!(replies[2], Err(NetError::UnknownEndpoint(_))));
        assert_eq!(
            client.pending_len(),
            0,
            "every leg — replied, timed out, and route-failed — must be cleaned up"
        );
        // The slow worker answers after the gather returned.
        let req = slow.recv(Duration::from_secs(1)).unwrap();
        req.reply(b"late".to_vec()).unwrap();
        assert_eq!(reg.counter("volap_net_late_replies_total").get(), 1);
    }

    #[test]
    fn trace_ctx_propagates_and_hops_record_spans() {
        use volap_obs::{TraceConfig, Tracer};
        let net = Network::new();
        let tracer = Tracer::new(TraceConfig { sample: 1, ..TraceConfig::default() });
        net.attach_tracer(&tracer);
        let client = net.endpoint("client");
        let server = net.endpoint("server");
        let root = tracer.sample_root().unwrap();
        let h = thread::spawn(move || {
            let req = server.recv(Duration::from_secs(2)).unwrap();
            let ctx = req.trace.expect("context must propagate in the envelope");
            req.reply(b"ok".to_vec()).unwrap();
            ctx
        });
        let reply = client
            .request_traced("server", b"ping".to_vec(), Duration::from_secs(2), Some(&root))
            .unwrap();
        assert_eq!(reply, b"ok");
        let seen = h.join().unwrap();
        assert_eq!(seen.trace_id, root.trace_id);
        assert_eq!(seen.parent_span_id, root.span_id, "hop is a child of the root");
        let trace = tracer.assemble(root.trace_id).expect("hop span recorded");
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "net_hop");
        assert_eq!(trace.spans[0].annotation("dest"), Some("server"));
        // Untraced requests stay contextless even with a tracer attached.
        let h2 = thread::spawn({
            let server2 = net.endpoint("server2");
            move || {
                let req = server2.recv(Duration::from_secs(2)).unwrap();
                assert!(req.trace.is_none());
                req.reply(vec![]).unwrap();
            }
        });
        client.request("server2", vec![], Duration::from_secs(2)).unwrap();
        h2.join().unwrap();
    }

    #[test]
    fn request_many_traced_spans_every_leg() {
        use volap_obs::{TraceConfig, Tracer};
        let net = Network::new();
        let tracer = Tracer::new(TraceConfig { sample: 1, ..TraceConfig::default() });
        net.attach_tracer(&tracer);
        let client = net.endpoint("client");
        let mut handles = Vec::new();
        for i in 0..3 {
            let server = net.endpoint(format!("s{i}"));
            handles.push(thread::spawn(move || {
                let req = server.recv(Duration::from_secs(2)).unwrap();
                let ctx = req.trace.expect("fan-out leg carries a context");
                req.reply(vec![]).unwrap();
                ctx
            }));
        }
        let root = tracer.sample_root().unwrap();
        let reqs: Vec<(String, Vec<u8>)> = (0..3).map(|i| (format!("s{i}"), vec![i])).collect();
        let replies = client.request_many_traced(&reqs, Duration::from_secs(2), Some(&root));
        assert!(replies.iter().all(Result::is_ok));
        let mut leg_spans = std::collections::HashSet::new();
        for h in handles {
            let ctx = h.join().unwrap();
            assert_eq!(ctx.trace_id, root.trace_id);
            assert_eq!(ctx.parent_span_id, root.span_id);
            leg_spans.insert(ctx.span_id);
        }
        assert_eq!(leg_spans.len(), 3, "every leg gets its own span id");
        let trace = tracer.assemble(root.trace_id).unwrap();
        let hops: Vec<_> = trace.spans.iter().filter(|s| s.name == "net_hop").collect();
        assert_eq!(hops.len(), 3);
        assert!(hops.iter().all(|s| s.parent_span_id == root.span_id));
    }

    #[test]
    fn queue_wait_is_measured() {
        let net = Network::new();
        let a = net.endpoint("a");
        let b = net.endpoint("b");
        a.send("b", vec![1]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let msg = b.recv(Duration::from_secs(1)).unwrap();
        assert!(msg.queued >= Duration::from_millis(15), "queue wait {:?}", msg.queued);
    }

    #[test]
    fn unregister_stops_routing() {
        let net = Network::new();
        let a = net.endpoint("a");
        let _b = net.endpoint("b");
        net.unregister("b");
        assert!(matches!(a.send("b", vec![]), Err(NetError::UnknownEndpoint(_))));
    }
}
