//! Offline shim for the `parking_lot` crate.
//!
//! This build environment has no access to a crates registry, so the
//! workspace provides the small slice of `parking_lot` it actually uses as a
//! wrapper over `std::sync` primitives:
//!
//! - [`Mutex`] / [`RwLock`] with parking_lot's non-poisoning semantics
//!   (a panic while holding a guard does not wedge later lock calls), and
//! - [`RwLock::write_arc`] returning an owned [`ArcRwLockWriteGuard`]
//!   (the `arc_lock` feature of the real crate), which the tree layer uses
//!   for hand-over-hand write-lock coupling during inserts.
//!
//! The API shapes mirror upstream so the workspace can swap back to the real
//! crate by editing one line in the root `Cargo.toml`.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A mutual-exclusion lock that ignores poisoning, like `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that ignores poisoning, like `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an owned write guard through an `Arc`, as provided by the
    /// real crate's `arc_lock` feature.
    ///
    /// The guard keeps the `Arc` alive for as long as it is held, so it has
    /// no lifetime tied to the borrow of `this` — callers can move it around
    /// while descending a tree (hand-over-hand lock coupling).
    pub fn write_arc(this: &Arc<Self>) -> ArcRwLockWriteGuard<T> {
        let arc = Arc::clone(this);
        let guard = arc.inner.write().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the guard borrows from the `RwLock` inside `arc`, which is
        // heap-allocated and kept alive by the `Arc` stored alongside the
        // guard. `ArcRwLockWriteGuard::drop` releases the guard before the
        // `Arc`, so the borrow never outlives the allocation. The `'static`
        // lifetime is never exposed to callers.
        let guard: std::sync::RwLockWriteGuard<'static, T> =
            unsafe { std::mem::transmute(guard) };
        ArcRwLockWriteGuard {
            guard: ManuallyDrop::new(guard),
            _arc: arc,
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Owned write guard returned by [`RwLock::write_arc`].
pub struct ArcRwLockWriteGuard<T: ?Sized + 'static> {
    // Field order matters only documentationally; the actual release order is
    // enforced in `Drop` below (guard first, then the Arc).
    guard: ManuallyDrop<std::sync::RwLockWriteGuard<'static, T>>,
    _arc: Arc<RwLock<T>>,
}

impl<T: ?Sized> Deref for ArcRwLockWriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for ArcRwLockWriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for ArcRwLockWriteGuard<T> {
    fn drop(&mut self) {
        // SAFETY: `guard` is only dropped here, exactly once, and before the
        // `Arc` keeping its referent alive.
        unsafe { ManuallyDrop::drop(&mut self.guard) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn write_arc_guard_moves_across_scopes() {
        // Hand-over-hand coupling: acquire the child while still holding the
        // parent, then release the parent by reassigning the guard variable.
        let parent = Arc::new(RwLock::new(1u64));
        let child = Arc::new(RwLock::new(2u64));
        let mut cur = RwLock::write_arc(&parent);
        *cur += 10;
        let next = RwLock::write_arc(&child);
        cur = next; // drops the parent guard
        assert_eq!(*cur, 2);
        assert_eq!(*parent.read(), 11, "parent released while child held");
        drop(cur);
        assert_eq!(*child.read(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn contended_rwlock() {
        let l = Arc::new(RwLock::new(0usize));
        let reads = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                let reads = Arc::clone(&reads);
                s.spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                        let _ = *l.read();
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(reads.load(Ordering::Relaxed), 400);
        assert_eq!(*l.read(), 400);
    }
}
