//! System-wide configuration.

use std::time::Duration;

use volap_dims::Schema;
use volap_tree::{StoreKind, TreeConfig};

/// Configuration for a VOLAP deployment (scaled-down defaults for a
/// single-machine simulated cluster).
///
/// The paper's EC2 deployment maps onto these knobs as: `m` servers,
/// `p` workers, `k` threads each, Zookeeper sync every 3 s
/// ([`VolapConfig::sync_period`]), and the manager's split/migration policy
/// (§III-E). Defaults here shrink the time constants by ~30× so experiments
/// complete in seconds while preserving every ratio that matters.
#[derive(Clone)]
pub struct VolapConfig {
    /// Dimension hierarchies.
    pub schema: Schema,
    /// Shard data structure (the paper recommends
    /// [`StoreKind::HilbertPdcMds`]).
    pub store_kind: StoreKind,
    /// Tree sizing for shard stores. The `column_compression` and
    /// `rollup_levels` members are overridden by the same-named top-level
    /// knobs below (see [`VolapConfig::tree_config`]).
    pub tree: TreeConfig,
    /// Whether shard leaves choose dictionary/bit-packed column encodings at
    /// build and split time. Purely a memory/scan-speed trade; query results
    /// are identical either way.
    pub column_compression: bool,
    /// Coarse hierarchy levels materialized as per-cell rollup aggregates in
    /// every shard. Queries aligned at a materialized level are answered
    /// without touching the tree (reported as `rollup_hits` in EXPLAIN
    /// plans). `0` disables rollups.
    pub rollup_levels: usize,
    /// Number of servers (`m`).
    pub servers: usize,
    /// Number of workers (`p`).
    pub workers: usize,
    /// Service threads per server (`k`).
    pub server_threads: usize,
    /// Service threads per worker (`k`).
    pub worker_threads: usize,
    /// Threads in each worker's query pool: a multi-shard query fans its
    /// local shard scans out over this pool instead of walking them one
    /// after another. `1` disables the pool (fully sequential scans);
    /// `0` sizes it to the machine's available parallelism.
    pub query_threads: usize,
    /// How often servers push local-image changes to the global image and
    /// apply remote changes (paper default: 3 s).
    pub sync_period: Duration,
    /// How often workers publish shard statistics.
    pub stats_period: Duration,
    /// How often the manager evaluates load balance.
    pub manager_period: Duration,
    /// Whether to run the manager at all.
    pub manager_enabled: bool,
    /// Split any shard exceeding this many items.
    pub max_shard_items: u64,
    /// Trigger migrations when a worker's load exceeds the mean by this
    /// fraction (and another is below by the same).
    pub migrate_slack: f64,
    /// Cap on migrations per manager round.
    pub max_moves_per_round: usize,
    /// Empty shards seeded per worker at bootstrap.
    pub initial_shards_per_worker: usize,
    /// Request/reply timeout.
    pub request_timeout: Duration,
    /// Injected one-way network latency (None = instantaneous).
    pub net_latency: Option<Duration>,
    /// Directory fanout of the server routing index.
    pub index_dir_cap: usize,
    /// Server-side ingest coalescing: `ClientInsert` traffic is buffered and
    /// routed in per-shard batches of up to this many items. `1` disables
    /// coalescing (every insert is routed and acknowledged individually —
    /// today's behavior); larger values trade a bounded acknowledgement
    /// delay ([`VolapConfig::ingest_flush_interval`]) for per-item routing,
    /// locking, and request overhead amortized across the batch.
    pub ingest_batch: usize,
    /// Upper bound on how long a buffered `ClientInsert` may wait before a
    /// partially filled ingest batch is flushed. Only meaningful when
    /// `ingest_batch > 1`.
    pub ingest_flush_interval: Duration,
    /// Whether observability latency histograms record at all. Counters,
    /// gauges, the event log, and the staleness probe are always on (their
    /// record path is a relaxed atomic or fires only on rare events);
    /// histograms additionally cost two `Instant::now()` calls per timed
    /// operation, and this knob turns that off for overhead-critical runs.
    pub obs_histograms: bool,
    /// Total structured events retained by the observability ring buffer.
    pub obs_event_capacity: usize,
    /// Whether workers track per-shard heat (EWMA insert/query rates,
    /// surfaced via `Cluster::heatmap()` and `volap-stat --heat`). On, the
    /// hot path pays one relaxed load, a branch, and a relaxed increment
    /// per touched shard; off, just the load and branch. Runtime-togglable
    /// through `Obs::heat().set_enabled(..)`.
    pub heat_enabled: bool,
    /// Half-life of the heat EWMAs: after this long with no activity a
    /// shard's measured rate decays to half. Shorter reacts faster;
    /// longer smooths bursts.
    pub heat_halflife: Duration,
    /// Total load-balance decisions retained by the audit ring buffer.
    pub audit_capacity: usize,
    /// Whether the runtime lock-order checker is armed (debug builds only;
    /// release builds compile the checker out entirely). On, every lock
    /// acquisition is validated against the global lock hierarchy
    /// (DESIGN.md §15) via a thread-local held-lock stack, and a violation
    /// panics with both class names. Off, acquisitions skip the check but
    /// lock *telemetry* (contention counters and wait/hold histograms)
    /// stays on — that is governed by `volap_obs::lock::set_telemetry_enabled`.
    pub lock_check: bool,
    /// Head-based causal-tracing sample rate: one in every `trace_sample`
    /// client requests gets a full cross-component trace (server routing →
    /// net hops → worker queues → per-shard tree execution). `0` (the
    /// default) disables tracing entirely — the hot path then costs one
    /// relaxed load and a branch. `64` is a sensible production-style rate.
    pub trace_sample: u32,
    /// Sampled traces whose *root* span takes at least this long enter the
    /// slow-query flight recorder ([`crate::Cluster::slow_traces`]).
    pub trace_slow_threshold: Duration,
    /// How often the continuous-telemetry sampler captures a history frame
    /// (registry deltas → interval rates and quantiles) and runs the SLO
    /// health watchdog. `Duration::ZERO` disables the sampler thread
    /// entirely; the ring can also be paused at runtime via
    /// `Obs::history().set_enabled(false)`.
    pub history_interval: Duration,
    /// Frames retained by the history ring (oldest evicted first). `0`
    /// disables capture and the sampler thread. The default (240 frames ×
    /// 250 ms) covers the last minute.
    pub history_capacity: usize,
    /// SLO rules the health watchdog evaluates every sampler interval.
    /// Defaults to `HealthRule::defaults()` (see DESIGN.md §16 for the
    /// table); empty disables health tracking while keeping the history
    /// ring.
    pub health_rules: Vec<volap_obs::HealthRule>,
    /// Whether per-principal workload accounting is armed. On, requests
    /// tagged with a principal (`ClientSession::with_principal`) charge
    /// their measured cost — rows scanned, queue wait, wall time, bytes,
    /// hops, fan-out — to exact per-tenant totals plus decayed top-K
    /// heavy-hitter sketches (`Cluster::accounting()`, `volap-stat
    /// --tenants`). Untagged traffic pays one branch either way. Runtime-
    /// togglable via `Accounting::set_enabled`.
    pub accounting_enabled: bool,
    /// Slots per heavy-hitter sketch (one space-saving sketch per cost
    /// dimension). Any principal holding more than `total/topk` of a
    /// dimension's decayed weight is guaranteed a slot; memory is
    /// `O(topk × dimensions)` regardless of tenant count.
    pub accounting_topk: usize,
}

impl VolapConfig {
    /// Scaled-down defaults over the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            store_kind: StoreKind::HilbertPdcMds,
            tree: TreeConfig::default(),
            column_compression: true,
            rollup_levels: 0,
            servers: 2,
            workers: 4,
            server_threads: 2,
            worker_threads: 2,
            query_threads: 2,
            sync_period: Duration::from_millis(100),
            stats_period: Duration::from_millis(50),
            manager_period: Duration::from_millis(100),
            manager_enabled: true,
            max_shard_items: 20_000,
            migrate_slack: 0.25,
            max_moves_per_round: 4,
            initial_shards_per_worker: 1,
            request_timeout: Duration::from_secs(10),
            net_latency: None,
            index_dir_cap: 8,
            ingest_batch: 1,
            ingest_flush_interval: Duration::from_millis(2),
            obs_histograms: true,
            obs_event_capacity: 4096,
            heat_enabled: true,
            heat_halflife: Duration::from_secs(2),
            audit_capacity: 1024,
            lock_check: true,
            trace_sample: 0,
            trace_slow_threshold: Duration::from_millis(100),
            history_interval: Duration::from_millis(250),
            history_capacity: 240,
            health_rules: volap_obs::HealthRule::defaults(),
            accounting_enabled: true,
            accounting_topk: 8,
        }
    }

    /// The tree configuration shard stores are actually built with: `tree`
    /// with the top-level `column_compression` / `rollup_levels` knobs
    /// merged in.
    pub fn tree_config(&self) -> TreeConfig {
        TreeConfig {
            column_compression: self.column_compression,
            rollup_levels: self.rollup_levels,
            ..self.tree.clone()
        }
    }
}
