//! Observability overhead guard, recorded to `BENCH_obs.json`.
//!
//! Drives a per-item ingest workload through one long-lived cluster while
//! flipping the registry's runtime histogram switch between measurement
//! segments (counters stay on; they are the cheap part), and compares
//! items/sec. The obs record path is a handful of relaxed atomics plus two
//! `Instant` reads per timed operation, so instrumented throughput must
//! stay within tolerance (default 5%, `OBS_OVERHEAD_TOLERANCE` to
//! override) of the histograms-off rate; the process exits non-zero
//! otherwise. The statistic is a trimmed mean of per-pair overheads: each
//! pair runs the two configurations back to back and alternates which
//! goes first, so the slow throughput decay from tree growth lands on
//! both sides equally and cancels from the mean, while trimming the
//! extreme pairs discards segments that caught an OS scheduling hiccup.

use std::time::Instant;

use volap::{ClientSession, Cluster, VolapConfig};
use volap_bench::{BenchEnv, GateNoise};
use volap_data::DataGen;
use volap_dims::{Item, Schema};

const ITEMS_PER_SEGMENT: usize = 15_000;
const PAIRS: usize = 16;
const TRIM: usize = 3;

fn segment(client: &ClientSession, items: &[Item]) -> f64 {
    let t = Instant::now();
    for item in items {
        client.insert(item).expect("insert");
    }
    items.len() as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    let env = BenchEnv::setup("bench_obs");
    let tolerance: f64 = std::env::var("OBS_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let schema = Schema::uniform(3, 2, 8);
    let mut cfg = VolapConfig::new(schema.clone());
    cfg.servers = 1;
    cfg.workers = 1;
    cfg.initial_shards_per_worker = 2;
    cfg.manager_enabled = false;
    // The history sampler has its own overhead gate (bench_health); keep
    // its background wakeups out of this subsystem's measurement.
    cfg.history_capacity = 0;
    let cluster = Cluster::start(cfg);
    let client = cluster.client();
    let reg = cluster.obs().registry();
    let mut gen = DataGen::new(&schema, 17, 1.3);

    // Warm up threads, allocator, and the first tree levels untimed.
    for _ in 0..3 {
        segment(&client, &gen.items(ITEMS_PER_SEGMENT));
    }

    let (mut on_rates, mut off_rates, mut overheads) = (Vec::new(), Vec::new(), Vec::new());
    for pair in 0..PAIRS {
        let order = if pair % 2 == 0 { [true, false] } else { [false, true] };
        let (mut on_rate, mut off_rate) = (0f64, 0f64);
        for on in order {
            reg.set_histograms_enabled(on);
            let per_s = segment(&client, &gen.items(ITEMS_PER_SEGMENT));
            if on {
                on_rate = per_s;
            } else {
                off_rate = per_s;
            }
        }
        println!("pair {pair:>2}: on {on_rate:>7.0}/s  off {off_rate:>7.0}/s");
        on_rates.push(on_rate);
        off_rates.push(off_rate);
        overheads.push((off_rate - on_rate) / off_rate);
    }
    reg.set_histograms_enabled(true);
    cluster.shutdown();

    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        (v[(v.len() - 1) / 2] + v[v.len() / 2]) / 2.0
    };
    let instrumented = median(&mut on_rates);
    let disabled = median(&mut off_rates);
    overheads.sort_by(f64::total_cmp);
    let kept = &overheads[TRIM..PAIRS - TRIM];
    let overhead = kept.iter().sum::<f64>() / kept.len() as f64;
    let noise = GateNoise::from_rounds(&on_rates, &off_rates);
    let ok = overhead <= tolerance;
    println!(
        "instrumented {instrumented:.0}/s vs histograms-off {disabled:.0}/s (medians) \
         -> trimmed-mean overhead {:.2}% (tolerance {:.0}%) {}",
        overhead * 100.0,
        tolerance * 100.0,
        if ok { "OK" } else { "FAIL" }
    );
    noise.report(overhead);
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  {},\n  \
         {},\n  \
         \"items_per_segment\": {ITEMS_PER_SEGMENT},\n  \
         \"pairs\": {PAIRS},\n  \
         \"instrumented_per_s_median\": {instrumented:.0},\n  \
         \"histograms_off_per_s_median\": {disabled:.0},\n  \
         \"overhead_frac_trimmed_mean\": {overhead:.4},\n  \
         {},\n  \"tolerance_frac\": {tolerance},\n  \
         \"within_tolerance\": {ok}\n}}\n",
        env.json_fields(),
        env.headline("overhead_frac_trimmed_mean", (overhead * 1e4).round() / 1e4, false),
        noise.json_fragment()
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
    if !ok {
        std::process::exit(1);
    }
}
